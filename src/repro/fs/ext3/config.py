"""ext3 geometry: block groups, journal region, and derived layout.

Real ext3 divides the disk into block groups with statically-reserved
bitmaps, inode tables and data blocks (§5.1).  Our layout:

    block 0                  superblock (primary)
    block 1                  group descriptor table
    blocks J .. J+Jn-1       journal region (journal super + log)
    then per group g:
        +0                   superblock backup (written at mkfs, never
                             updated afterwards — the paper's finding)
        +1                   block bitmap
        +2                   inode bitmap
        +3 .. +3+itb-1       inode table
        rest                 data area (file data, directories,
                             indirect blocks)

mkfs parameters shrink images so deep indirect chains are cheap to
exercise; ``ptrs_per_block`` caps the pointers stored per indirect
block (defaults to the natural block_size // 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

INODE_SIZE = 128
POINTER_SIZE = 4
NUM_DIRECT = 12

#: Inode numbers: 0 invalid, 1 reserved (bad blocks), 2 root.
ROOT_INO = 2
FIRST_FREE_INO = 3


@dataclass(frozen=True)
class Ext3Config:
    """mkfs-time parameters."""

    block_size: int = 1024
    blocks_per_group: int = 256
    inodes_per_group: int = 64
    num_groups: int = 2
    journal_blocks: int = 64
    #: Pointers per indirect block; small values make triple-indirect
    #: files reachable with tiny images.  None = block_size // 4.
    ptrs_per_block: Optional[int] = None

    # ixt3 feature regions (0 blocks for plain ext3).
    checksum_blocks: int = 0
    replica_blocks: int = 0

    def __post_init__(self) -> None:
        if self.block_size % 512 or self.block_size < 512:
            raise ValueError("block_size must be a multiple of 512")
        if self.inodes_per_group % self.inodes_per_block:
            raise ValueError("inodes_per_group must fill whole inode-table blocks")
        if self.effective_ptrs < 2:
            raise ValueError("need at least 2 pointers per indirect block")
        if self.journal_blocks < 8:
            raise ValueError("journal needs at least 8 blocks")

    # -- derived quantities --------------------------------------------------

    @cached_property
    def inodes_per_block(self) -> int:
        return self.block_size // INODE_SIZE

    @cached_property
    def inode_table_blocks(self) -> int:
        return self.inodes_per_group // self.inodes_per_block

    @cached_property
    def effective_ptrs(self) -> int:
        natural = self.block_size // POINTER_SIZE
        if self.ptrs_per_block is None:
            return natural
        return min(self.ptrs_per_block, natural)

    @cached_property
    def group_overhead_blocks(self) -> int:
        # sb backup + block bitmap + inode bitmap + inode table
        return 3 + self.inode_table_blocks

    @cached_property
    def data_blocks_per_group(self) -> int:
        n = self.blocks_per_group - self.group_overhead_blocks
        if n <= 0:
            raise ValueError("blocks_per_group too small for group metadata")
        return n

    @cached_property
    def total_inodes(self) -> int:
        return self.inodes_per_group * self.num_groups

    # -- absolute layout -------------------------------------------------------

    @property
    def super_block(self) -> int:
        return 0

    @property
    def gdt_block(self) -> int:
        return 1

    @property
    def journal_start(self) -> int:
        return 2

    @cached_property
    def checksum_start(self) -> int:
        return self.journal_start + self.journal_blocks

    @cached_property
    def replica_start(self) -> int:
        return self.checksum_start + self.checksum_blocks

    @cached_property
    def groups_start(self) -> int:
        return self.replica_start + self.replica_blocks

    @cached_property
    def total_blocks(self) -> int:
        return self.groups_start + self.num_groups * self.blocks_per_group

    @cached_property
    def _group_bases(self) -> tuple:
        return tuple(self.groups_start + g * self.blocks_per_group
                     for g in range(self.num_groups))

    def group_base(self, group: int) -> int:
        if group < 0:
            raise ValueError(f"group {group} out of range")
        try:
            return self._group_bases[group]
        except IndexError:
            raise ValueError(f"group {group} out of range") from None

    def sb_backup_block(self, group: int) -> int:
        return self.group_base(group)

    def block_bitmap_block(self, group: int) -> int:
        return self.group_base(group) + 1

    def inode_bitmap_block(self, group: int) -> int:
        return self.group_base(group) + 2

    def inode_table_start(self, group: int) -> int:
        return self.group_base(group) + 3

    def data_start(self, group: int) -> int:
        return self.group_base(group) + self.group_overhead_blocks

    def group_of_block(self, block: int) -> Optional[int]:
        if block < self.groups_start:
            return None
        g = (block - self.groups_start) // self.blocks_per_group
        return g if g < self.num_groups else None

    # -- inode addressing ----------------------------------------------------------

    @cached_property
    def _inode_table_starts(self) -> tuple:
        return tuple(base + 3 for base in self._group_bases)

    def inode_location(self, ino: int):
        """(absolute block, byte offset) of inode *ino* (1-based)."""
        if not 1 <= ino <= self.total_inodes:
            raise ValueError(f"inode {ino} out of range")
        index = ino - 1
        group, within = divmod(index, self.inodes_per_group)
        block_off, slot = divmod(within, self.inodes_per_block)
        return self._inode_table_starts[group] + block_off, slot * INODE_SIZE

    def group_of_inode(self, ino: int) -> int:
        return (ino - 1) // self.inodes_per_group

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")

    # -- file size limits ----------------------------------------------------------

    @cached_property
    def max_file_blocks(self) -> int:
        p = self.effective_ptrs
        return NUM_DIRECT + p + p * p + p * p * p
