"""ext3 on-disk structures: superblock, group descriptors, inodes,
directory entries — serialized with :mod:`struct` so corruption faults
operate on real bytes."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from struct import Struct
from typing import List

from repro.common.structs import U16x2, u32_seq
from repro.fs.ext3.config import INODE_SIZE, NUM_DIRECT, Ext3Config

EXT3_MAGIC = 0xEF53

# File-type codes stored in directory entries.
FT_UNKNOWN = 0
FT_REG = 1
FT_DIR = 2
FT_SYMLINK = 7

# Superblock state.
STATE_CLEAN = 1
STATE_DIRTY = 2

# Feature flags (ixt3).
FEAT_META_CSUM = 1 << 0
FEAT_DATA_CSUM = 1 << 1
FEAT_META_REPLICA = 1 << 2
FEAT_DATA_PARITY = 1 << 3
FEAT_TXN_CSUM = 1 << 4

_SB_STRUCT = Struct("<IIIIIIIIIIIIIIIHHIIIII")
_SB_SIZE = _SB_STRUCT.size


@dataclass
class Superblock:
    """Contains info about the file system (Table 4)."""

    magic: int
    block_size: int
    blocks_count: int
    inodes_count: int
    free_blocks: int
    free_inodes: int
    blocks_per_group: int
    inodes_per_group: int
    num_groups: int
    journal_start: int
    journal_blocks: int
    groups_start: int
    ptrs_per_block: int
    checksum_start: int
    checksum_blocks: int
    state: int = STATE_CLEAN
    mount_count: int = 0
    features: int = 0
    replica_start: int = 0
    replica_blocks: int = 0
    first_free_ino_hint: int = 3
    generation: int = 0

    @classmethod
    def for_config(cls, config: Ext3Config, features: int = 0) -> "Superblock":
        total_data = config.data_blocks_per_group * config.num_groups
        return cls(
            magic=EXT3_MAGIC,
            block_size=config.block_size,
            blocks_count=config.total_blocks,
            inodes_count=config.total_inodes,
            free_blocks=total_data,
            free_inodes=config.total_inodes - 2,  # 1 reserved, 2 root
            blocks_per_group=config.blocks_per_group,
            inodes_per_group=config.inodes_per_group,
            num_groups=config.num_groups,
            journal_start=config.journal_start,
            journal_blocks=config.journal_blocks,
            groups_start=config.groups_start,
            ptrs_per_block=config.effective_ptrs,
            checksum_start=config.checksum_start,
            checksum_blocks=config.checksum_blocks,
            features=features,
            replica_start=config.replica_start,
            replica_blocks=config.replica_blocks,
        )

    def pack(self, block_size: int) -> bytes:
        payload = _SB_STRUCT.pack(
            self.magic,
            self.block_size,
            self.blocks_count,
            self.inodes_count,
            self.free_blocks,
            self.free_inodes,
            self.blocks_per_group,
            self.inodes_per_group,
            self.num_groups,
            self.journal_start,
            self.journal_blocks,
            self.groups_start,
            self.ptrs_per_block,
            self.checksum_start,
            self.checksum_blocks,
            self.state,
            0,  # pad
            self.mount_count,
            self.features,
            self.replica_start,
            self.replica_blocks,
            self.first_free_ino_hint,
        )
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "Superblock":
        fields = _SB_STRUCT.unpack_from(data)
        return cls(
            magic=fields[0],
            block_size=fields[1],
            blocks_count=fields[2],
            inodes_count=fields[3],
            free_blocks=fields[4],
            free_inodes=fields[5],
            blocks_per_group=fields[6],
            inodes_per_group=fields[7],
            num_groups=fields[8],
            journal_start=fields[9],
            journal_blocks=fields[10],
            groups_start=fields[11],
            ptrs_per_block=fields[12],
            checksum_start=fields[13],
            checksum_blocks=fields[14],
            state=fields[15],
            mount_count=fields[17],
            features=fields[18],
            replica_start=fields[19],
            replica_blocks=fields[20],
            first_free_ino_hint=fields[21],
        )

    def is_valid(self) -> bool:
        """The sanity (type) check ext3 performs on its superblock."""
        return (
            self.magic == EXT3_MAGIC
            and self.block_size >= 512
            and self.blocks_count > 0
            and self.num_groups > 0
        )


_GD_STRUCT = Struct("<IIIHHII")
_GD_SIZE = _GD_STRUCT.size


@dataclass
class GroupDescriptor:
    """Holds info about each block group (Table 4)."""

    block_bitmap: int
    inode_bitmap: int
    inode_table: int
    free_blocks: int
    free_inodes: int
    data_start: int
    data_blocks: int

    def pack(self) -> bytes:
        return _GD_STRUCT.pack(
            self.block_bitmap,
            self.inode_bitmap,
            self.inode_table,
            self.free_blocks,
            self.free_inodes,
            self.data_start,
            self.data_blocks,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "GroupDescriptor":
        return cls(*_GD_STRUCT.unpack_from(data))


def pack_gdt(descriptors: List[GroupDescriptor], block_size: int) -> bytes:
    payload = b"".join(d.pack() for d in descriptors)
    if len(payload) > block_size:
        raise ValueError("group descriptor table exceeds one block")
    return payload + b"\x00" * (block_size - len(payload))


def unpack_gdt(data: bytes, num_groups: int) -> List[GroupDescriptor]:
    unpack = _GD_STRUCT.unpack_from
    return [GroupDescriptor(*unpack(data, g * _GD_SIZE)) for g in range(num_groups)]


_INODE_STRUCT = Struct("<HHHHQdddI" + "I" * NUM_DIRECT + "IIIIII")
_INODE_USED = _INODE_STRUCT.size
assert _INODE_USED <= INODE_SIZE, _INODE_USED


@dataclass(slots=True)
class Inode:
    """Info about files and directories (Table 4).

    An imbalanced tree: 12 direct pointers, then single, double and
    triple indirect blocks support large files (§4.1).
    """

    mode: int = 0
    links: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    nblocks: int = 0  # data blocks mapped (not counting indirect blocks)
    direct: List[int] = field(default_factory=lambda: [0] * NUM_DIRECT)
    indirect: int = 0
    dindirect: int = 0
    tindirect: int = 0
    flags: int = 0
    parity_block: int = 0  # ixt3 Dp: the file's parity block
    generation: int = 0

    def pack(self) -> bytes:
        payload = _INODE_STRUCT.pack(
            self.mode,
            self.links,
            self.uid,
            self.gid,
            self.size,
            self.atime,
            self.mtime,
            self.ctime,
            self.nblocks,
            *self.direct,
            self.indirect,
            self.dindirect,
            self.tindirect,
            self.flags,
            self.parity_block,
            self.generation,
        )
        return payload + b"\x00" * (INODE_SIZE - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "Inode":
        f = _INODE_STRUCT.unpack_from(data)
        return cls(
            mode=f[0],
            links=f[1],
            uid=f[2],
            gid=f[3],
            size=f[4],
            atime=f[5],
            mtime=f[6],
            ctime=f[7],
            nblocks=f[8],
            direct=list(f[9:9 + NUM_DIRECT]),
            indirect=f[9 + NUM_DIRECT],
            dindirect=f[10 + NUM_DIRECT],
            tindirect=f[11 + NUM_DIRECT],
            flags=f[12 + NUM_DIRECT],
            parity_block=f[13 + NUM_DIRECT],
            generation=f[14 + NUM_DIRECT],
        )

    def copy(self) -> "Inode":
        out = replace(self)
        out.direct = list(self.direct)
        return out

    @property
    def is_allocated(self) -> bool:
        return self.links > 0 or self.mode != 0


_DIRENT_HDR = Struct("<IBB")


@dataclass(frozen=True)
class DirEntry:
    """One directory entry: list-of-files-in-directory record."""

    ino: int
    ftype: int
    name: str

    def pack(self) -> bytes:
        # latin-1 keeps one byte per character, so even garbage names
        # recovered from a corrupted block repack at the same length.
        raw = self.name.encode("latin-1", errors="replace")[:255]
        return _DIRENT_HDR.pack(self.ino & 0xFFFFFFFF, len(raw), self.ftype & 0xFF) + raw


def pack_dir_block(entries: List[DirEntry], block_size: int) -> bytes:
    payload = b"".join(e.pack() for e in entries)
    if len(payload) > block_size:
        raise ValueError("directory entries exceed one block")
    return payload + b"\x00" * (block_size - len(payload))


#: Content-keyed parse cache.  Parsing is a pure function of the block
#: payload, directory blocks are re-read constantly (every path lookup
#: walks them), and the zero-copy substrate returns stable ``bytes``
#: objects for unmodified blocks — so the common hit costs one (cached)
#: hash.  Entries are frozen, so sharing them is safe; the returned
#: list is fresh per call because callers mutate it.
_DIR_PARSE_CACHE: dict = {}


def unpack_dir_block(data: bytes) -> List[DirEntry]:
    """Parse a directory block.

    Deliberately tolerant: ext3 performs *no* type checking on directory
    blocks (§5.1), so garbage parses into garbage entries or an early
    stop — exactly the blind behaviour the paper documents.
    """
    cacheable = type(data) is bytes
    if cacheable:
        cached = _DIR_PARSE_CACHE.get(data)
        if cached is not None:
            return list(cached)
    entries: List[DirEntry] = []
    off = 0
    n = len(data)
    unpack_hdr = _DIRENT_HDR.unpack_from
    while off + 6 <= n:
        ino, name_len, ftype = unpack_hdr(data, off)
        if ino == 0 and name_len == 0:
            break
        off += 6
        if off + name_len > n:
            break
        name = data[off:off + name_len].decode("latin-1")
        off += name_len
        if ino != 0:
            entries.append(DirEntry(ino, ftype, name))
    if cacheable:
        if len(_DIR_PARSE_CACHE) > 4096:
            _DIR_PARSE_CACHE.clear()
        _DIR_PARSE_CACHE[data] = tuple(entries)
    return entries


def pack_pointer_block(pointers: List[int], block_size: int, nptrs: int) -> bytes:
    """Serialize an indirect block: nptrs 4-byte little-endian pointers."""
    if len(pointers) != nptrs:
        raise ValueError("pointer list must exactly fill the block layout")
    payload = u32_seq(nptrs).pack(*pointers)
    return payload + b"\x00" * (block_size - len(payload))


def unpack_pointer_block(data: bytes, nptrs: int) -> List[int]:
    return list(u32_seq(nptrs).unpack_from(data))


def inode_slot(table_block_payload: bytes, offset: int) -> Inode:
    return Inode.unpack(table_block_payload[offset:offset + INODE_SIZE])


def iter_allocated_inodes(table_block_payload, inodes_per_block: int):
    """Yield ``(slot, raw-field tuple)`` for each allocated inode slot in
    one table block, skipping free slots on a two-field header probe.
    The tuple layout matches ``Inode.unpack``'s field order; callers
    index it directly to avoid materializing an :class:`Inode` per slot
    (the type-oracle rebuild walks every slot of every table block).
    Accepts ``bytes`` or a zero-copy ``memoryview``."""
    probe = U16x2.unpack_from
    unpack = _INODE_STRUCT.unpack_from
    for slot in range(inodes_per_block):
        off = slot * INODE_SIZE
        mode, links = probe(table_block_payload, off)
        if links == 0 and mode == 0:
            continue  # Inode.is_allocated is False
        yield slot, unpack(table_block_payload, off)


def patch_inode_block(table_block_payload: bytes, offset: int, inode: Inode) -> bytes:
    raw = bytearray(table_block_payload)
    raw[offset:offset + INODE_SIZE] = inode.pack()
    return bytes(raw)
