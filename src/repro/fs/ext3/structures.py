"""ext3 on-disk structures: superblock, group descriptors, inodes,
directory entries — serialized with :mod:`struct` so corruption faults
operate on real bytes."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List

from repro.fs.ext3.config import INODE_SIZE, NUM_DIRECT, Ext3Config

EXT3_MAGIC = 0xEF53

# File-type codes stored in directory entries.
FT_UNKNOWN = 0
FT_REG = 1
FT_DIR = 2
FT_SYMLINK = 7

# Superblock state.
STATE_CLEAN = 1
STATE_DIRTY = 2

# Feature flags (ixt3).
FEAT_META_CSUM = 1 << 0
FEAT_DATA_CSUM = 1 << 1
FEAT_META_REPLICA = 1 << 2
FEAT_DATA_PARITY = 1 << 3
FEAT_TXN_CSUM = 1 << 4

_SB_FMT = "<IIIIIIIIIIIIIIIHHIIIII"
_SB_SIZE = struct.calcsize(_SB_FMT)


@dataclass
class Superblock:
    """Contains info about the file system (Table 4)."""

    magic: int
    block_size: int
    blocks_count: int
    inodes_count: int
    free_blocks: int
    free_inodes: int
    blocks_per_group: int
    inodes_per_group: int
    num_groups: int
    journal_start: int
    journal_blocks: int
    groups_start: int
    ptrs_per_block: int
    checksum_start: int
    checksum_blocks: int
    state: int = STATE_CLEAN
    mount_count: int = 0
    features: int = 0
    replica_start: int = 0
    replica_blocks: int = 0
    first_free_ino_hint: int = 3
    generation: int = 0

    @classmethod
    def for_config(cls, config: Ext3Config, features: int = 0) -> "Superblock":
        total_data = config.data_blocks_per_group * config.num_groups
        return cls(
            magic=EXT3_MAGIC,
            block_size=config.block_size,
            blocks_count=config.total_blocks,
            inodes_count=config.total_inodes,
            free_blocks=total_data,
            free_inodes=config.total_inodes - 2,  # 1 reserved, 2 root
            blocks_per_group=config.blocks_per_group,
            inodes_per_group=config.inodes_per_group,
            num_groups=config.num_groups,
            journal_start=config.journal_start,
            journal_blocks=config.journal_blocks,
            groups_start=config.groups_start,
            ptrs_per_block=config.effective_ptrs,
            checksum_start=config.checksum_start,
            checksum_blocks=config.checksum_blocks,
            features=features,
            replica_start=config.replica_start,
            replica_blocks=config.replica_blocks,
        )

    def pack(self, block_size: int) -> bytes:
        payload = struct.pack(
            _SB_FMT,
            self.magic,
            self.block_size,
            self.blocks_count,
            self.inodes_count,
            self.free_blocks,
            self.free_inodes,
            self.blocks_per_group,
            self.inodes_per_group,
            self.num_groups,
            self.journal_start,
            self.journal_blocks,
            self.groups_start,
            self.ptrs_per_block,
            self.checksum_start,
            self.checksum_blocks,
            self.state,
            0,  # pad
            self.mount_count,
            self.features,
            self.replica_start,
            self.replica_blocks,
            self.first_free_ino_hint,
        )
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "Superblock":
        fields = struct.unpack_from(_SB_FMT, data)
        return cls(
            magic=fields[0],
            block_size=fields[1],
            blocks_count=fields[2],
            inodes_count=fields[3],
            free_blocks=fields[4],
            free_inodes=fields[5],
            blocks_per_group=fields[6],
            inodes_per_group=fields[7],
            num_groups=fields[8],
            journal_start=fields[9],
            journal_blocks=fields[10],
            groups_start=fields[11],
            ptrs_per_block=fields[12],
            checksum_start=fields[13],
            checksum_blocks=fields[14],
            state=fields[15],
            mount_count=fields[17],
            features=fields[18],
            replica_start=fields[19],
            replica_blocks=fields[20],
            first_free_ino_hint=fields[21],
        )

    def is_valid(self) -> bool:
        """The sanity (type) check ext3 performs on its superblock."""
        return (
            self.magic == EXT3_MAGIC
            and self.block_size >= 512
            and self.blocks_count > 0
            and self.num_groups > 0
        )


_GD_FMT = "<IIIHHII"
_GD_SIZE = struct.calcsize(_GD_FMT)


@dataclass
class GroupDescriptor:
    """Holds info about each block group (Table 4)."""

    block_bitmap: int
    inode_bitmap: int
    inode_table: int
    free_blocks: int
    free_inodes: int
    data_start: int
    data_blocks: int

    def pack(self) -> bytes:
        return struct.pack(
            _GD_FMT,
            self.block_bitmap,
            self.inode_bitmap,
            self.inode_table,
            self.free_blocks,
            self.free_inodes,
            self.data_start,
            self.data_blocks,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "GroupDescriptor":
        return cls(*struct.unpack_from(_GD_FMT, data))


def pack_gdt(descriptors: List[GroupDescriptor], block_size: int) -> bytes:
    payload = b"".join(d.pack() for d in descriptors)
    if len(payload) > block_size:
        raise ValueError("group descriptor table exceeds one block")
    return payload + b"\x00" * (block_size - len(payload))


def unpack_gdt(data: bytes, num_groups: int) -> List[GroupDescriptor]:
    out = []
    for g in range(num_groups):
        out.append(GroupDescriptor.unpack(data[g * _GD_SIZE:(g + 1) * _GD_SIZE]))
    return out


_INODE_FMT = "<HHHHQdddI" + "I" * NUM_DIRECT + "IIIIII"
_INODE_USED = struct.calcsize(_INODE_FMT)
assert _INODE_USED <= INODE_SIZE, _INODE_USED


@dataclass
class Inode:
    """Info about files and directories (Table 4).

    An imbalanced tree: 12 direct pointers, then single, double and
    triple indirect blocks support large files (§4.1).
    """

    mode: int = 0
    links: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    nblocks: int = 0  # data blocks mapped (not counting indirect blocks)
    direct: List[int] = field(default_factory=lambda: [0] * NUM_DIRECT)
    indirect: int = 0
    dindirect: int = 0
    tindirect: int = 0
    flags: int = 0
    parity_block: int = 0  # ixt3 Dp: the file's parity block
    generation: int = 0

    def pack(self) -> bytes:
        payload = struct.pack(
            _INODE_FMT,
            self.mode,
            self.links,
            self.uid,
            self.gid,
            self.size,
            self.atime,
            self.mtime,
            self.ctime,
            self.nblocks,
            *self.direct,
            self.indirect,
            self.dindirect,
            self.tindirect,
            self.flags,
            self.parity_block,
            self.generation,
        )
        return payload + b"\x00" * (INODE_SIZE - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "Inode":
        f = struct.unpack_from(_INODE_FMT, data)
        return cls(
            mode=f[0],
            links=f[1],
            uid=f[2],
            gid=f[3],
            size=f[4],
            atime=f[5],
            mtime=f[6],
            ctime=f[7],
            nblocks=f[8],
            direct=list(f[9:9 + NUM_DIRECT]),
            indirect=f[9 + NUM_DIRECT],
            dindirect=f[10 + NUM_DIRECT],
            tindirect=f[11 + NUM_DIRECT],
            flags=f[12 + NUM_DIRECT],
            parity_block=f[13 + NUM_DIRECT],
            generation=f[14 + NUM_DIRECT],
        )

    def copy(self) -> "Inode":
        out = replace(self)
        out.direct = list(self.direct)
        return out

    @property
    def is_allocated(self) -> bool:
        return self.links > 0 or self.mode != 0


@dataclass(frozen=True)
class DirEntry:
    """One directory entry: list-of-files-in-directory record."""

    ino: int
    ftype: int
    name: str

    def pack(self) -> bytes:
        # latin-1 keeps one byte per character, so even garbage names
        # recovered from a corrupted block repack at the same length.
        raw = self.name.encode("latin-1", errors="replace")[:255]
        return struct.pack("<IBB", self.ino & 0xFFFFFFFF, len(raw), self.ftype & 0xFF) + raw


def pack_dir_block(entries: List[DirEntry], block_size: int) -> bytes:
    payload = b"".join(e.pack() for e in entries)
    if len(payload) > block_size:
        raise ValueError("directory entries exceed one block")
    return payload + b"\x00" * (block_size - len(payload))


def unpack_dir_block(data: bytes) -> List[DirEntry]:
    """Parse a directory block.

    Deliberately tolerant: ext3 performs *no* type checking on directory
    blocks (§5.1), so garbage parses into garbage entries or an early
    stop — exactly the blind behaviour the paper documents.
    """
    entries: List[DirEntry] = []
    off = 0
    n = len(data)
    while off + 6 <= n:
        ino, name_len, ftype = struct.unpack_from("<IBB", data, off)
        if ino == 0 and name_len == 0:
            break
        off += 6
        if off + name_len > n:
            break
        name = data[off:off + name_len].decode("latin-1")
        off += name_len
        if ino != 0:
            entries.append(DirEntry(ino, ftype, name))
    return entries


def pack_pointer_block(pointers: List[int], block_size: int, nptrs: int) -> bytes:
    """Serialize an indirect block: nptrs 4-byte little-endian pointers."""
    if len(pointers) != nptrs:
        raise ValueError("pointer list must exactly fill the block layout")
    payload = struct.pack(f"<{nptrs}I", *pointers)
    return payload + b"\x00" * (block_size - len(payload))


def unpack_pointer_block(data: bytes, nptrs: int) -> List[int]:
    return list(struct.unpack_from(f"<{nptrs}I", data))


def inode_slot(table_block_payload: bytes, offset: int) -> Inode:
    return Inode.unpack(table_block_payload[offset:offset + INODE_SIZE])


def patch_inode_block(table_block_payload: bytes, offset: int, inode: Inode) -> bytes:
    raw = bytearray(table_block_payload)
    raw[offset:offset + INODE_SIZE] = inode.pack()
    return bytes(raw)
