"""Linux ext3 (§5.1): block groups, bitmaps, indirect trees, JBD journal."""

from repro.fs.ext3.config import Ext3Config, ROOT_INO
from repro.fs.ext3.ext3 import Ext3
from repro.fs.ext3.fsck import Ext3Fsck, FsckReport, fsck_ext3
from repro.fs.ext3.mkfs import mkfs_ext3
from repro.fs.ext3.structures import (
    DirEntry,
    GroupDescriptor,
    Inode,
    Superblock,
)

__all__ = [
    "DirEntry",
    "Ext3",
    "Ext3Config",
    "Ext3Fsck",
    "FsckReport",
    "fsck_ext3",
    "GroupDescriptor",
    "Inode",
    "ROOT_INO",
    "Superblock",
    "mkfs_ext3",
]
