"""mkfs for ext3/ixt3 volumes.

Writes the superblock (plus its per-group backup copies — which ext3
then never updates, §5.1), group descriptors, bitmaps, inode tables,
the root directory, and a clean journal.
"""

from __future__ import annotations

from repro.common.bitmap import Bitmap
from repro.disk.disk import BlockDevice
from repro.fs.ext3.config import ROOT_INO, Ext3Config
from repro.fs.ext3.journal import pack_journal_super
from repro.fs.ext3.structures import (
    DirEntry,
    FT_DIR,
    GroupDescriptor,
    Inode,
    Superblock,
    pack_dir_block,
    pack_gdt,
    patch_inode_block,
)
from repro.vfs.stat import DEFAULT_DIR_MODE


def mkfs_ext3(device: BlockDevice, config: Ext3Config, features: int = 0) -> Superblock:
    """Format *device* with an ext3 layout.  Returns the superblock."""
    if device.num_blocks < config.total_blocks:
        raise ValueError(
            f"device too small: {device.num_blocks} blocks, layout needs {config.total_blocks}"
        )
    if device.block_size != config.block_size:
        raise ValueError("device block size does not match config")
    bs = config.block_size
    zero = b"\x00" * bs

    sb = Superblock.for_config(config, features=features)

    gdt = []
    for g in range(config.num_groups):
        gdt.append(GroupDescriptor(
            block_bitmap=config.block_bitmap_block(g),
            inode_bitmap=config.inode_bitmap_block(g),
            inode_table=config.inode_table_start(g),
            free_blocks=config.data_blocks_per_group,
            free_inodes=config.inodes_per_group,
            data_start=config.data_start(g),
            data_blocks=config.data_blocks_per_group,
        ))

    # Root directory: first data block of group 0.
    root_block = config.data_start(0)
    root_inode = Inode(mode=DEFAULT_DIR_MODE, links=2, size=bs,
                       atime=1.0, mtime=1.0, ctime=1.0, nblocks=1)
    root_inode.direct[0] = root_block
    gdt[0].free_blocks -= 1
    gdt[0].free_inodes -= 2  # reserved ino 1 + root ino 2
    if config.num_groups > 1:
        sb.free_blocks -= 1
        sb.free_inodes = config.total_inodes - 2
    else:
        sb.free_blocks -= 1
        sb.free_inodes -= 0
    sb.free_inodes = config.total_inodes - 2

    # Journal: clean superblock; the rest of the region parses as
    # nothing (zeroes fail the magic check) so recovery finds no work.
    device.write_block(config.journal_start, pack_journal_super(bs, 1, clean=True))

    # ixt3 regions (no-ops for plain ext3: zero length).
    for i in range(config.checksum_blocks):
        device.write_block(config.checksum_start + i, zero)
    for i in range(config.replica_blocks):
        device.write_block(config.replica_start + i, zero)

    # Per-group metadata.
    for g in range(config.num_groups):
        device.write_block(config.sb_backup_block(g), sb.pack(bs))
        block_bmp = Bitmap(config.data_blocks_per_group)
        inode_bmp = Bitmap(config.inodes_per_group)
        if g == 0:
            block_bmp.set(0)   # root directory block
            inode_bmp.set(0)   # ino 1, reserved
            inode_bmp.set(1)   # ino 2, root
        device.write_block(config.block_bitmap_block(g), block_bmp.to_bytes(pad_to=bs))
        device.write_block(config.inode_bitmap_block(g), inode_bmp.to_bytes(pad_to=bs))
        for i in range(config.inode_table_blocks):
            device.write_block(config.inode_table_start(g) + i, zero)

    # Root inode + root directory contents.
    iblock, ioff = config.inode_location(ROOT_INO)
    device.write_block(iblock, patch_inode_block(device.read_block(iblock), ioff, root_inode))
    root_entries = [DirEntry(ROOT_INO, FT_DIR, "."), DirEntry(ROOT_INO, FT_DIR, "..")]
    device.write_block(root_block, pack_dir_block(root_entries, bs))

    # Primary superblock and group descriptor table last, making the
    # volume mountable only once fully formatted.
    device.write_block(config.gdt_block, pack_gdt(gdt, bs))
    device.write_block(config.super_block, sb.pack(bs))
    return sb
