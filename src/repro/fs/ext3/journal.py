"""A JBD-style write-ahead journal for ext3/ixt3.

Ordered-mode journaling as ext3 runs it (§5.1): each transaction writes
ordered data blocks in place, then copies of dirty metadata into the
journal (descriptor block, data copies, optional revoke block), then —
after waiting for the journal writes to reach disk, which costs
rotational delay — the commit block.  Metadata is later *checkpointed*
to its final home location, cleaning the journal.

The paper's transactional checksum (Tc, §6.1) removes the pre-commit
ordering wait: the commit block carries a checksum over the
transaction, so all blocks can be issued concurrently and recovery can
detect a torn commit by checksum mismatch instead of by ordering.

Failure-policy hooks are injected by the owning file system: ext3
passes write functions that *ignore* error codes (its documented bug —
a failed journal write still commits, §5.1), while ixt3 passes checked
writes that abort the journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from struct import Struct
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.checksum import SHA1_SIZE, transaction_checksum
from repro.common.errors import CorruptionDetected, ReadError
from repro.common.structs import U32, U32x2, u32_seq
from repro.common.syslog import SysLog

JMAGIC = 0x4A424454  # "JBDT"

JB_SUPER = 0
JB_DESC = 1
JB_COMMIT = 2
JB_REVOKE = 3

_HDR_STRUCT = Struct("<III")  # magic, btype, seq
_HDR_SIZE = _HDR_STRUCT.size


def _pack_header(btype: int, seq: int) -> bytes:
    return _HDR_STRUCT.pack(JMAGIC, btype, seq)


def _parse_header(data: bytes) -> Optional[Tuple[int, int]]:
    magic, btype, seq = _HDR_STRUCT.unpack_from(data)
    if magic != JMAGIC:
        return None
    return btype, seq


def pack_journal_super(block_size: int, next_seq: int, clean: bool) -> bytes:
    payload = _pack_header(JB_SUPER, 0) + U32x2.pack(next_seq, 1 if clean else 0)
    return payload + b"\x00" * (block_size - len(payload))


def parse_journal_super(data: bytes) -> Optional[Tuple[int, bool]]:
    hdr = _parse_header(data)
    if hdr is None or hdr[0] != JB_SUPER:
        return None
    next_seq, clean = U32x2.unpack_from(data, _HDR_SIZE)
    return next_seq, bool(clean)


def desc_capacity(block_size: int) -> int:
    return (block_size - _HDR_SIZE - 4) // 4


def pack_desc(block_size: int, seq: int, homes: List[int]) -> bytes:
    payload = (_pack_header(JB_DESC, seq) + U32.pack(len(homes))
               + u32_seq(len(homes)).pack(*homes))
    return payload + b"\x00" * (block_size - len(payload))


def parse_desc(data: bytes) -> Optional[Tuple[int, List[int]]]:
    hdr = _parse_header(data)
    if hdr is None or hdr[0] != JB_DESC:
        return None
    (count,) = U32.unpack_from(data, _HDR_SIZE)
    if count > desc_capacity(len(data)):
        return None
    homes = list(u32_seq(count).unpack_from(data, _HDR_SIZE + 4))
    return hdr[1], homes


def pack_commit(block_size: int, seq: int, nblocks: int, checksum: bytes = b"") -> bytes:
    csum = checksum or b"\x00" * SHA1_SIZE
    payload = _pack_header(JB_COMMIT, seq) + U32.pack(nblocks) + csum
    return payload + b"\x00" * (block_size - len(payload))


def parse_commit(data: bytes) -> Optional[Tuple[int, int, bytes]]:
    hdr = _parse_header(data)
    if hdr is None or hdr[0] != JB_COMMIT:
        return None
    (nblocks,) = U32.unpack_from(data, _HDR_SIZE)
    csum = bytes(data[_HDR_SIZE + 4:_HDR_SIZE + 4 + SHA1_SIZE])
    return hdr[1], nblocks, csum


def pack_revoke(block_size: int, seq: int, blocks: List[int]) -> bytes:
    payload = (_pack_header(JB_REVOKE, seq) + U32.pack(len(blocks))
               + u32_seq(len(blocks)).pack(*blocks))
    return payload + b"\x00" * (block_size - len(payload))


def parse_revoke(data: bytes) -> Optional[Tuple[int, List[int]]]:
    hdr = _parse_header(data)
    if hdr is None or hdr[0] != JB_REVOKE:
        return None
    (count,) = U32.unpack_from(data, _HDR_SIZE)
    if count > desc_capacity(len(data)):
        return None
    blocks = list(u32_seq(count).unpack_from(data, _HDR_SIZE + 4))
    return hdr[1], blocks


@dataclass
class Transaction:
    """One running transaction: buffered metadata, ordered data, revokes."""

    seq: int
    meta: Dict[int, bytes] = field(default_factory=dict)
    ordered: Dict[int, bytes] = field(default_factory=dict)
    revoked: Set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not self.meta and not self.ordered and not self.revoked


# Write-policy callbacks supplied by the owning file system.
WriteFn = Callable[[int, bytes], None]
TypeFn = Callable[[int, str], None]
StallFn = Callable[[float], None]


class Journal:
    """The write-ahead log occupying a fixed region of the volume."""

    def __init__(
        self,
        start: int,
        nblocks: int,
        block_size: int,
        syslog: SysLog,
        journal_write: WriteFn,
        home_write: WriteFn,
        ordered_write: WriteFn,
        read_block: Callable[[int], bytes],
        set_type: TypeFn,
        stall: StallFn,
        commit_stall_s: float,
        txn_checksum: bool = False,
    ):
        self.start = start
        self.nblocks = nblocks
        self.block_size = block_size
        self.syslog = syslog
        self._journal_write = journal_write
        self._home_write = home_write
        self._ordered_write = ordered_write
        self._read_block = read_block
        self._set_type = set_type
        self._stall = stall
        self.commit_stall_s = commit_stall_s
        self.txn_checksum = txn_checksum

        self.seq = 1
        self.head = 1  # next free slot, relative to self.start
        self.aborted = False
        self.current: Optional[Transaction] = None
        #: Committed-but-not-checkpointed metadata (latest wins).
        self.checkpoint_blocks: Dict[int, bytes] = {}
        self.commits = 0
        self.checkpoints = 0

    # -- transaction construction ------------------------------------------

    def begin(self) -> Transaction:
        if self.current is None:
            self.current = Transaction(seq=self.seq)
        return self.current

    def add_meta(self, block: int, data: bytes) -> None:
        self.begin().meta[block] = bytes(data)

    def add_ordered(self, block: int, data: bytes) -> None:
        self.begin().ordered[block] = bytes(data)

    def revoke(self, block: int) -> None:
        txn = self.begin()
        txn.revoked.add(block)
        txn.meta.pop(block, None)

    def cached(self, block: int) -> Optional[bytes]:
        """Latest in-flight contents of *block*: running txn first, then
        committed-but-unwritten checkpoint state."""
        if self.current is not None:
            if block in self.current.meta:
                return self.current.meta[block]
            if block in self.current.ordered:
                return self.current.ordered[block]
        return self.checkpoint_blocks.get(block)

    # -- commit ------------------------------------------------------------------

    def commit(self) -> None:
        """Commit the running transaction (ordered mode)."""
        txn = self.current
        if txn is None or txn.is_empty():
            self.current = None
            return
        if self.aborted:
            self.current = None
            return

        # 0. Blocks revoked by this transaction must never be written
        #    back from stale checkpoint images — they may already have
        #    been reallocated (and rewritten) under a new role.  Drop
        #    them before any mid-commit checkpoint can flush them.
        for home in txn.revoked:
            self.checkpoint_blocks.pop(home, None)

        # 1. Ordered data reaches its home location before the metadata
        #    that references it commits.  Issued in elevator order, as
        #    the block layer's scheduler would sort the queue.
        for block in sorted(txn.ordered):
            self._ordered_write(block, txn.ordered[block])

        homes = list(txn.meta.keys())
        needed = self._txn_footprint(len(homes), bool(txn.revoked))
        if self.head + needed > self.nblocks:
            # Journal full: checkpoint everything and reset the log.
            self.checkpoint()

        # 2. Descriptor + metadata copies (+ revoke) into the log.
        cap = desc_capacity(self.block_size)
        copies_in_order: List[bytes] = []
        for i in range(0, len(homes), cap):
            chunk = homes[i:i + cap]
            self._jwrite("j-desc", pack_desc(self.block_size, txn.seq, chunk))
            for home in chunk:
                payload = txn.meta[home]
                copies_in_order.append(payload)
                self._jwrite("j-data", payload)
        if txn.revoked:
            self._jwrite("j-revoke", pack_revoke(self.block_size, txn.seq, sorted(txn.revoked)))

        # 3. Ordering: standard ext3 waits for the journal writes to
        #    reach the platter before issuing the commit block — an
        #    extra rotational delay.  With transactional checksums the
        #    commit block is issued concurrently and the wait vanishes.
        checksum = b""
        if self.txn_checksum:
            checksum = transaction_checksum(copies_in_order)
        else:
            self._stall(self.commit_stall_s)

        # 4. Commit block (skipped if the journal aborted mid-commit).
        if self.aborted:
            self.current = None
            return
        self._jwrite("j-commit", pack_commit(self.block_size, txn.seq, len(homes), checksum))

        # 5. Transaction is durable; stage metadata for checkpointing.
        self.checkpoint_blocks.update(txn.meta)
        self.seq += 1
        self.commits += 1
        self.current = None

    def checkpoint(self) -> None:
        """Write committed metadata to its home locations and reset the log."""
        for block in sorted(self.checkpoint_blocks):
            self._home_write(block, self.checkpoint_blocks[block])
        self.checkpoint_blocks.clear()
        self.head = 1
        self._set_type(self.start, "j-super")
        self._journal_write(self.start, pack_journal_super(self.block_size, self.seq, clean=True))
        self.checkpoints += 1

    def abort(self) -> None:
        """Abort the journal: no further commits will be written."""
        self.aborted = True
        self.current = None

    def crash(self) -> None:
        """Power loss: volatile state vanishes; the log stays on disk."""
        self.current = None
        self.checkpoint_blocks.clear()

    # -- recovery -------------------------------------------------------------------

    def recover(self) -> int:
        """Replay committed transactions found in the log (two passes, as
        JBD does: collect revokes, then replay).  Returns the number of
        transactions replayed.

        Faithful to the study: journal *descriptor/commit/super* blocks
        are type-checked (magic numbers), but journaled *data copies*
        carry no type information and are replayed blindly — a corrupted
        j-data block lands wherever its descriptor points (§5.1, §5.2).
        """
        sb_raw = self._read_block(self.start)
        parsed = parse_journal_super(sb_raw)
        if parsed is None:
            raise CorruptionDetected(self.start, "bad journal superblock magic")
        next_seq, clean = parsed
        self.seq = max(self.seq, next_seq)

        # Pass 1: walk the log, collecting committed transactions and revokes.
        txns: List[Tuple[int, List[Tuple[int, bytes]]]] = []
        revokes: List[Tuple[int, int]] = []  # (block, revoking seq)
        pos = 1
        expected_seq = next_seq
        pending: List[Tuple[int, bytes]] = []
        pending_seq: Optional[int] = None
        while pos < self.nblocks:
            raw = self._read_block(self.start + pos)
            hdr = _parse_header(raw)
            if hdr is None:
                break
            btype, seq = hdr
            if btype == JB_DESC:
                parsed_desc = parse_desc(raw)
                if parsed_desc is None:
                    break
                _, homes = parsed_desc
                if pending_seq is None:
                    if seq != expected_seq:
                        break  # stale transaction from before the last checkpoint
                    pending_seq = seq
                elif seq != pending_seq:
                    break
                pos += 1
                for home in homes:
                    if pos >= self.nblocks:
                        break
                    copy = self._read_block(self.start + pos)
                    pending.append((home, copy))
                    pos += 1
                continue
            if btype == JB_REVOKE:
                parsed_rev = parse_revoke(raw)
                if parsed_rev is not None:
                    for block in parsed_rev[1]:
                        revokes.append((block, seq))
                pos += 1
                continue
            if btype == JB_COMMIT:
                parsed_commit = parse_commit(raw)
                if parsed_commit is None or pending_seq is None or seq != pending_seq:
                    break
                _, _, csum = parsed_commit
                if self.txn_checksum and any(b != 0 for b in csum):
                    actual = transaction_checksum(c for _, c in pending)
                    if actual != csum:
                        self.syslog.warning(
                            "journal", "txn-checksum-mismatch",
                            f"transaction {seq} torn; not replaying",
                        )
                        pending = []
                        pending_seq = None
                        break
                txns.append((seq, pending))
                pending = []
                pending_seq = None
                expected_seq = seq + 1
                pos += 1
                continue
            break

        # Pass 2: replay, honouring revokes (a block revoked at seq S is
        # not replayed from any transaction with seq <= S).
        replayed = 0
        for seq, blocks in txns:
            for home, copy in blocks:
                if any(rb == home and rseq >= seq for rb, rseq in revokes):
                    continue
                self._home_write(home, copy)
            replayed += 1
            self.seq = max(self.seq, seq + 1)

        # Reset the log.
        self.head = 1
        self._set_type(self.start, "j-super")
        self._journal_write(self.start, pack_journal_super(self.block_size, self.seq, clean=True))
        if replayed:
            self.syslog.recovery("journal", "recovery",
                                 f"replayed {replayed} transactions",
                                 mechanism="journal-replay")
        return replayed

    # -- internals --------------------------------------------------------------------

    def _txn_footprint(self, nmeta: int, has_revoke: bool) -> int:
        cap = desc_capacity(self.block_size)
        ndesc = (nmeta + cap - 1) // cap if nmeta else 0
        return ndesc + nmeta + (1 if has_revoke else 0) + 1

    def _jwrite(self, jtype: str, payload: bytes) -> None:
        if self.aborted:
            return  # an abort mid-commit squelches the rest of the txn
        if self.head >= self.nblocks:
            raise ReadError(self.start + self.head, "journal overflow")
        block = self.start + self.head
        self._set_type(block, jtype)
        self._journal_write(block, payload)
        self.head += 1
