"""mkfs for ixt3 volumes: the ext3 layout plus the checksum and replica
regions, initialized so every mkfs-written metadata block is covered
and replicated from the start (unlike ext3's never-updated superblock
copies, §5.1)."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.common.checksum import SHA1_SIZE, sha1_many
from repro.disk.disk import BlockDevice
from repro.fs.ext3.config import Ext3Config
from repro.fs.ext3.mkfs import mkfs_ext3
from repro.common.structs import U32x2
from repro.fs.ext3.structures import (
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
    Superblock,
)
from repro.fs.ixt3.features import REPLICA_MAP_BLOCKS

ALL_FEATURES = (FEAT_META_CSUM | FEAT_DATA_CSUM | FEAT_META_REPLICA
                | FEAT_DATA_PARITY | FEAT_TXN_CSUM)

#: Replica slots reserved for metadata allocated after mkfs
#: (directories, indirect blocks).
DYNAMIC_REPLICA_SLOTS = 96


def ixt3_config(base: Ext3Config,
                dynamic_replica_slots: int = DYNAMIC_REPLICA_SLOTS) -> Ext3Config:
    """Derive an ixt3 layout from a plain ext3 geometry: size the
    checksum region to cover the whole volume and the replica region to
    hold every static metadata block plus a dynamic quota."""
    per = base.block_size // SHA1_SIZE
    static_meta = 2 + base.num_groups * (3 + base.inode_table_blocks) + 1
    replica_blocks = REPLICA_MAP_BLOCKS + static_meta + dynamic_replica_slots
    checksum_blocks = 0
    # The checksum region grows the volume, which grows the region:
    # iterate to a fixed point.
    for _ in range(8):
        cfg = replace(base, checksum_blocks=checksum_blocks,
                      replica_blocks=replica_blocks)
        needed = (cfg.total_blocks + per - 1) // per
        if needed == checksum_blocks:
            return cfg
        checksum_blocks = needed
    return replace(base, checksum_blocks=checksum_blocks,
                   replica_blocks=replica_blocks)


def _static_meta_blocks(cfg: Ext3Config):
    """Metadata blocks written by mkfs, in deterministic order."""
    blocks = [cfg.super_block, cfg.gdt_block]
    for g in range(cfg.num_groups):
        blocks.append(cfg.sb_backup_block(g))
        blocks.append(cfg.block_bitmap_block(g))
        blocks.append(cfg.inode_bitmap_block(g))
        for i in range(cfg.inode_table_blocks):
            blocks.append(cfg.inode_table_start(g) + i)
    blocks.append(cfg.data_start(0))  # root directory block
    return blocks


def mkfs_ixt3(device: BlockDevice, base: Ext3Config,
              features: int = ALL_FEATURES,
              config: Optional[Ext3Config] = None) -> Superblock:
    """Format *device* as ixt3.  *base* is the ext3 geometry; the
    checksum/replica regions are derived (or passed via *config*)."""
    cfg = config or ixt3_config(base)
    sb = mkfs_ext3(device, cfg, features=features)
    bs = cfg.block_size
    static = _static_meta_blocks(cfg)

    if features & FEAT_META_CSUM and cfg.checksum_blocks:
        per = bs // SHA1_SIZE
        images = {}
        digests = sha1_many(device.read_block(home) for home in static)
        for home, digest in zip(static, digests):
            cks_block = cfg.checksum_start + home // per
            payload = images.setdefault(cks_block, bytearray(bs))
            off = (home % per) * SHA1_SIZE
            payload[off:off + SHA1_SIZE] = digest
        for cks_block, payload in images.items():
            device.write_block(cks_block, bytes(payload))

    if features & FEAT_META_REPLICA and cfg.replica_blocks:
        entries = []
        for slot, home in enumerate(static):
            device.write_block(cfg.replica_start + REPLICA_MAP_BLOCKS + slot,
                               device.read_block(home))
            entries.append((home, slot))
        per_map = (bs - 8) // 8
        for i in range(REPLICA_MAP_BLOCKS):
            chunk = entries[i * per_map:(i + 1) * per_map]
            out = bytearray(U32x2.pack(len(entries) if i == 0 else 0, 0))
            for home, slot in chunk:
                out += U32x2.pack(home, slot)
            out += b"\x00" * (bs - len(out))
            device.write_block(cfg.replica_start + i, bytes(out))
    return sb
