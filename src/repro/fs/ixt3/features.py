"""ixt3's redundancy machinery: the checksum store and the replica map.

Checksums (§6.1): SHA-1 digests of block contents, packed many to a
block in a dedicated region *distant* from the blocks they cover, so a
misdirected or phantom write cannot silently refresh both a block and
its checksum.  Updates travel through the journal with the transaction
that dirtied the block; digests are cached for read verification.

Metadata replicas (§6.1): every metadata block has a copy in a replica
region in a distant part of the volume.  A persistent map (stored in
the first blocks of the region) tracks home→slot assignments; both
copies are updated in the same transaction, so either both reach disk
or neither does.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.checksum import SHA1_SIZE, sha1
from repro.common.structs import U32x2

ReadBlock = Callable[[int], bytes]
JournalMeta = Callable[[int, bytes], None]

#: Blocks at the head of the replica region holding the home→slot map.
REPLICA_MAP_BLOCKS = 2

_ZERO_DIGEST = b"\x00" * SHA1_SIZE


class ChecksumStore:
    """SHA-1 per covered block, packed ``block_size // 20`` to a block."""

    def __init__(self, region_start: int, region_blocks: int, block_size: int,
                 read_block: ReadBlock, journal_meta: JournalMeta):
        self.region_start = region_start
        self.region_blocks = region_blocks
        self.block_size = block_size
        self.per_block = block_size // SHA1_SIZE
        self._read_block = read_block
        self._journal_meta = journal_meta
        self._cache: Dict[int, bytes] = {}  # cksum block -> payload
        #: Last payload that verified clean per covered block.  A repeat
        #: read of identical bytes short-circuits on equality instead of
        #: re-hashing; any in-flight corruption changes the bytes, so the
        #: comparison fails and the full SHA-1 path runs as before.
        self._verified: Dict[int, bytes] = {}

    def covers(self, block: int) -> bool:
        return block // self.per_block < self.region_blocks

    def location(self, block: int) -> tuple:
        cks_block = self.region_start + block // self.per_block
        offset = (block % self.per_block) * SHA1_SIZE
        return cks_block, offset

    def _load(self, cks_block: int) -> bytes:
        if cks_block not in self._cache:
            self._cache[cks_block] = self._read_block(cks_block)
        return self._cache[cks_block]

    def stored_digest(self, block: int) -> Optional[bytes]:
        """Stored digest for *block*, or None when never checksummed."""
        if not self.covers(block):
            return None
        cks_block, offset = self.location(block)
        payload = self._load(cks_block)
        digest = payload[offset:offset + SHA1_SIZE]
        return None if digest == _ZERO_DIGEST else bytes(digest)

    def verify(self, block: int, data: bytes) -> bool:
        """True when *data* matches the stored digest (or none is stored)."""
        expected = self.stored_digest(block)
        if expected is None:
            return True
        if self._verified.get(block) == data:
            return True
        ok = sha1(data) == expected
        if ok:
            self._verified[block] = bytes(data)
        return ok

    def update(self, block: int, data: bytes) -> None:
        """Record the new digest of *block*, journaling the checksum
        block with the same transaction."""
        if not self.covers(block):
            return
        cks_block, offset = self.location(block)
        payload = bytearray(self._load(cks_block))
        payload[offset:offset + SHA1_SIZE] = sha1(data)
        frozen = bytes(payload)
        self._cache[cks_block] = frozen
        # The stored digest is sha1(data) by construction, so the new
        # payload is the verified image for this block.
        self._verified[block] = bytes(data)
        self._journal_meta(cks_block, frozen)

    def forget(self, block: int) -> None:
        """Clear the digest (block freed)."""
        if not self.covers(block):
            return
        cks_block, offset = self.location(block)
        payload = bytearray(self._load(cks_block))
        payload[offset:offset + SHA1_SIZE] = _ZERO_DIGEST
        frozen = bytes(payload)
        self._cache[cks_block] = frozen
        self._verified.pop(block, None)
        self._journal_meta(cks_block, frozen)

    def drop_cache(self) -> None:
        self._cache.clear()
        self._verified.clear()


#: Replica map entry: (home block, slot index), 8 bytes each.
_MAP_ENTRY = U32x2
_MAP_HDR = U32x2  # count, pad


class ReplicaMap:
    """Persistent home→replica-slot map plus the replica slots."""

    def __init__(self, region_start: int, region_blocks: int, map_blocks: int,
                 block_size: int, read_block: ReadBlock, journal_meta: JournalMeta):
        self.region_start = region_start
        self.region_blocks = region_blocks
        self.map_blocks = map_blocks
        self.block_size = block_size
        self._read_block = read_block
        self._journal_meta = journal_meta
        self.slots: Dict[int, int] = {}  # home -> slot index
        self._loaded = False

    @property
    def slot_capacity(self) -> int:
        return self.region_blocks - self.map_blocks

    def slot_block(self, slot: int) -> int:
        return self.region_start + self.map_blocks + slot

    def replica_block_of(self, home: int) -> Optional[int]:
        self._ensure_loaded()
        slot = self.slots.get(home)
        return None if slot is None else self.slot_block(slot)

    def assign(self, home: int) -> Optional[int]:
        """Slot for *home*, allocating (and persisting) if needed.
        Returns the replica block, or None when the region is full."""
        self._ensure_loaded()
        if home in self.slots:
            return self.slot_block(self.slots[home])
        used = set(self.slots.values())
        for slot in range(self.slot_capacity):
            if slot not in used:
                self.slots[home] = slot
                self._persist()
                return self.slot_block(slot)
        return None

    def release(self, home: int) -> None:
        self._ensure_loaded()
        if home in self.slots:
            del self.slots[home]
            self._persist()

    # -- persistence ----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self.slots = {}
        per = (self.block_size - 8) // 8
        count = 0
        for i in range(self.map_blocks):
            data = self._read_block(self.region_start + i)
            if i == 0:
                (count, _) = _MAP_HDR.unpack_from(data)
            in_this_block = max(0, min(per, count - i * per))
            off = 8
            for _ in range(in_this_block):
                home, slot = _MAP_ENTRY.unpack_from(data, off)
                self.slots[home] = slot
                off += 8
        self._loaded = True

    def _persist(self) -> None:
        entries = sorted(self.slots.items())
        per = (self.block_size - 8) // 8
        for i in range(self.map_blocks):
            chunk = entries[i * per:(i + 1) * per]
            out = bytearray(_MAP_HDR.pack(len(entries) if i == 0 else 0, 0))
            for home, slot in chunk:
                out += _MAP_ENTRY.pack(home, slot)
            out += b"\x00" * (self.block_size - len(out))
            self._journal_meta(self.region_start + i, bytes(out))

    def drop_cache(self) -> None:
        self._loaded = False
