"""ixt3 (§6): the IRON version of ext3 — checksums, metadata
replication, per-file parity, and transactional checksums."""

from repro.fs.ext3.structures import (
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
)
from repro.fs.ixt3.features import ChecksumStore, ReplicaMap
from repro.fs.ixt3.ixt3 import Ixt3
from repro.fs.ixt3.mkfs import ALL_FEATURES, ixt3_config, mkfs_ixt3

__all__ = [
    "ALL_FEATURES",
    "ChecksumStore",
    "FEAT_DATA_CSUM",
    "FEAT_DATA_PARITY",
    "FEAT_META_CSUM",
    "FEAT_META_REPLICA",
    "FEAT_TXN_CSUM",
    "Ixt3",
    "ReplicaMap",
    "ixt3_config",
    "mkfs_ixt3",
]
