"""ixt3 — the IRON version of ext3 (§6).

Extends ext3 with five independently-switchable mechanisms:

* **Mc** — metadata checksumming (``D_redundancy`` detection);
* **Dc** — data checksumming;
* **Mr** — metadata replication to a distant region (``R_redundancy``);
* **Dp** — one parity block per file over its data blocks
  (``R_redundancy`` for user data);
* **Tc** — transactional checksums: the commit block carries a checksum
  over the transaction, removing the pre-commit ordering wait.

ixt3 also *fixes* the ext3 bugs the study found: write errors are
checked (a failed write aborts the journal and remounts read-only,
``R_stop``, so failed transactions are never committed), ``truncate``
and ``rmdir`` propagate errors, and ``unlink`` sanity-checks the link
count instead of crashing.
"""

from __future__ import annotations

import stat as _stat
from functools import lru_cache
from typing import Dict, List, Optional

from repro.common.errors import CorruptionDetected, DiskError, Errno, FSError
from repro.fs.ext3.ext3 import Ext3, _static_types_ext3
from repro.fs.ext3.structures import (
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
    Inode,
)
from repro.fs.ixt3.features import REPLICA_MAP_BLOCKS, ChecksumStore, ReplicaMap

#: Block types whose contents are metadata (replicated and Mc-covered).
META_TYPES = frozenset(
    ["inode", "dir", "bitmap", "i-bitmap", "indirect", "super", "g-desc"]
)
#: Block types covered by data checksumming.
DATA_TYPES = frozenset(["data", "parity"])


@lru_cache(maxsize=16)
def _static_types_ixt3(cfg) -> List[Optional[str]]:
    """ext3's static table plus ixt3's redundancy regions (checksum
    and replica stores live between the journal and the block groups,
    at geometry-determined offsets)."""
    table = list(_static_types_ext3(cfg))
    for b in range(cfg.checksum_start,
                   cfg.checksum_start + cfg.checksum_blocks):
        table[b] = "cksum"
    for b in range(cfg.replica_start,
                   cfg.replica_start + cfg.replica_blocks):
        table[b] = "replica"
    return table


class Ixt3(Ext3):
    """ixt3 over a :class:`BlockDevice`; features come from the
    superblock written at mkfs time."""

    name = "ixt3"

    BLOCK_TYPES: Dict[str, str] = dict(Ext3.BLOCK_TYPES)
    BLOCK_TYPES.update({
        "cksum": "Checksums over metadata and data blocks",
        "replica": "Replicas of metadata blocks",
        "parity": "Per-file parity blocks",
    })

    SILENT_TRUNCATE_BUG = False
    SILENT_RMDIR_BUG = False
    UNLINK_LINKCOUNT_BUG = False

    def __init__(self, device, sync_mode: bool = True, commit_every: int = 64,
                 commit_stall_s: Optional[float] = None):
        super().__init__(device, sync_mode=sync_mode, commit_every=commit_every,
                         commit_stall_s=commit_stall_s)
        self.checksums: Optional[ChecksumStore] = None
        self.replicas: Optional[ReplicaMap] = None
        self._verifying = False

    # -- feature flags --------------------------------------------------------

    @property
    def meta_csum(self) -> bool:
        return bool(self.sb and self.sb.features & FEAT_META_CSUM)

    @property
    def data_csum(self) -> bool:
        return bool(self.sb and self.sb.features & FEAT_DATA_CSUM)

    @property
    def meta_replica(self) -> bool:
        return bool(self.sb and self.sb.features & FEAT_META_REPLICA)

    @property
    def data_parity(self) -> bool:
        return bool(self.sb and self.sb.features & FEAT_DATA_PARITY)

    def _txn_checksum_enabled(self) -> bool:
        return bool(self.sb and self.sb.features & FEAT_TXN_CSUM)

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def mount(self) -> None:
        super().mount()
        cfg = self.config
        if cfg.checksum_blocks:
            self.checksums = ChecksumStore(
                region_start=cfg.checksum_start,
                region_blocks=cfg.checksum_blocks,
                block_size=self.block_size,
                read_block=self._plain_bread,
                journal_meta=self.journal.add_meta,
            )
            if self.meta_csum or self.data_csum:
                # Checksums are small and cached for read verification
                # (§6.1): one sequential sweep at mount warms the cache.
                with self._span("checksum-warm", "phase"):
                    for i in range(cfg.checksum_blocks):
                        try:
                            self.checksums._load(cfg.checksum_start + i)
                        except DiskError:
                            break
        if cfg.replica_blocks:
            self.replicas = ReplicaMap(
                region_start=cfg.replica_start,
                region_blocks=cfg.replica_blocks,
                map_blocks=REPLICA_MAP_BLOCKS,
                block_size=self.block_size,
                read_block=self._plain_bread,
                journal_meta=self.journal.add_meta,
            )

    def _plain_bread(self, block: int) -> bytes:
        """Unverified read for the redundancy structures themselves."""
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            return cached
        return self.buf.bread(block)

    # ==================================================================
    # Write policy: check error codes; abort + remount-ro on failure
    # (R_stop).  This also fixes the ext3 commit-after-failed-journal-
    # write bug, since the abort squelches the rest of the transaction.
    # ==================================================================

    def _checked_write(self, block: int, data: bytes) -> None:
        try:
            self.buf.bwrite(block, data)
        except DiskError as exc:
            self.syslog.detection(self.name, "write-error",
                                  f"write failed: {exc}",
                                  mechanism="error-code", block=block)
            self._abort_journal()

    def _write_home(self, block: int, data: bytes) -> None:
        self._checked_write(block, data)

    def _write_journal_block(self, block: int, data: bytes) -> None:
        self._checked_write(block, data)

    def _write_ordered(self, block: int, data: bytes) -> None:
        self._checked_write(block, data)

    # ==================================================================
    # Detection: checksum verification on every covered read
    # ==================================================================

    def _block_kind(self, block: int) -> Optional[str]:
        btype = self.block_type(block)
        if btype in META_TYPES:
            return "meta"
        if btype in DATA_TYPES:
            return "data"
        return None

    def _read_with_verify(self, block: int) -> bytes:
        data = self.buf.bread(block)
        if self._verifying or self.checksums is None:
            return data
        kind = self._block_kind(block)
        wanted = (kind == "meta" and self.meta_csum) or (
            kind == "data" and self.data_csum
        )
        if not wanted:
            return data
        self._verifying = True
        try:
            ok = self.checksums.verify(block, data)
        except DiskError:
            # The checksum block itself was unreadable; the read cannot
            # be verified but is not failed.
            self.syslog.warning(self.name, "cksum-unavailable",
                                f"cannot verify block {block}", block=block)
            return data
        finally:
            self._verifying = False
        if ok:
            return data
        self.syslog.detection(self.name, "checksum-mismatch",
                              f"block {block} fails checksum verification",
                              mechanism="redundancy", block=block)
        raise CorruptionDetected(block, "checksum mismatch")

    def _on_block_contents_change(self, block: int, data: bytes, kind: str) -> None:
        if self.checksums is not None:
            if (kind == "meta" and self.meta_csum) or (kind == "data" and self.data_csum):
                self.checksums.update(block, data)
        if kind == "meta" and self.meta_replica and self.replicas is not None:
            try:
                replica = self.replicas.assign(block)
            except DiskError as exc:
                # The replica map itself is unreadable: run degraded.
                self.syslog.warning(self.name, "replica-unavailable",
                                    f"cannot update replica map: {exc}", block=block)
                return
            if replica is None:
                self.syslog.warning(self.name, "replica-full",
                                    "replica region exhausted", block=block)
                return
            # The replica copy goes to the *separate replica log* in a
            # distant region (§6.1), ordered before the commit block so
            # both copies are consistent at every commit point.
            self.journal.add_ordered(replica, data)

    # ==================================================================
    # Recovery: replicas for metadata, parity for data (R_redundancy)
    # ==================================================================

    def _recover_meta_read(self, block: int, exc: Exception) -> Optional[bytes]:
        if not self.meta_replica or self.replicas is None:
            return None
        try:
            replica = self.replicas.replica_block_of(block)
        except DiskError:
            return None
        if replica is None:
            return None
        try:
            data = self._plain_bread(replica)
        except DiskError as exc2:
            self.syslog.detection(self.name, "read-error",
                                  f"replica read failed: {exc2}",
                                  mechanism="error-code", block=replica)
            return None
        if self.meta_csum and self.checksums is not None:
            self._verifying = True
            try:
                if not self.checksums.verify(block, data):
                    self.syslog.detection(self.name, "checksum-mismatch",
                                          f"replica of block {block} also corrupt",
                                          mechanism="redundancy", block=replica)
                    return None
            except DiskError:
                pass
            finally:
                self._verifying = False
        self.syslog.recovery(self.name, "redundancy-used",
                             f"recovered block {block} from replica {replica}",
                             mechanism="redundancy", block=block)
        # Repair the home copy within the running transaction.
        self.journal.add_meta(block, data)
        return data

    def _recover_data_read(self, ino: int, inode: Inode, file_block: int,
                           block: int, exc: Exception) -> Optional[bytes]:
        if not self.data_parity or inode.parity_block == 0:
            return None
        reconstructed = self._reconstruct_from_parity(inode, skip_block=block)
        if reconstructed is None:
            return None
        self.syslog.recovery(self.name, "redundancy-used",
                             f"reconstructed block {block} from parity",
                             mechanism="redundancy", block=block)
        return reconstructed

    def _reconstruct_from_parity(self, inode: Inode, skip_block: int) -> Optional[bytes]:
        """XOR the parity block with every other data block of the file."""
        bs = self.block_size
        acc = bytearray(bs)
        try:
            parity = self._plain_bread(inode.parity_block)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"parity read failed: {exc}",
                                  mechanism="error-code", block=inode.parity_block)
            return None
        for i in range(bs):
            acc[i] ^= parity[i]
        nblocks = (inode.size + bs - 1) // bs
        for fb in range(nblocks):
            try:
                bno, _ = self._bmap(inode.copy(), fb, allocate=False)
            except FSError:
                return None
            if bno == 0 or bno == skip_block:
                continue
            try:
                data = self._plain_bread(bno)
            except DiskError:
                # Parity tolerates exactly one lost block per file.
                return None
            for i in range(bs):
                acc[i] ^= data[i]
        return bytes(acc)

    # ==================================================================
    # Parity maintenance (Dp)
    # ==================================================================

    def _alloc_inode(self, hint_group: int, mode: int) -> int:
        ino = super()._alloc_inode(hint_group, mode)
        # Preallocate the parity block at creation time (§6.1) for
        # regular files.
        if self.data_parity and _stat.S_ISREG(mode):
            inode = self._iget(ino)
            inode.parity_block = self._alloc_block(0, "parity")
            zero = b"\x00" * self.block_size
            self.journal.add_ordered(inode.parity_block, zero)
            self._on_block_contents_change(inode.parity_block, zero, "data")
            self._iput(ino, inode)
        return ino

    def _update_parity(self, ino: int, inode: Inode, file_block: int,
                       block: int, new_payload: bytes, fresh: bool = False) -> None:
        if not self.data_parity or inode.parity_block == 0:
            return
        bs = self.block_size
        if fresh:
            old = b"\x00" * bs  # just allocated: prior contents are zero
        else:
            try:
                old = self._plain_bread(block)
            except DiskError:
                old = b"\x00" * bs
        try:
            parity = bytearray(self._plain_bread(inode.parity_block))
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"parity read failed during update: {exc}",
                                  mechanism="error-code", block=inode.parity_block)
            self._abort_journal()
            raise FSError(Errno.EIO, "cannot update parity") from exc
        for i in range(bs):
            parity[i] ^= old[i] ^ new_payload[i]
        frozen = bytes(parity)
        # Parity goes out with the ordered data writes; the elevator
        # batches all parity updates of a transaction into one pass.
        self.journal.add_ordered(inode.parity_block, frozen)
        self._on_block_contents_change(inode.parity_block, frozen, "data")

    def _release_parity(self, ino: int, inode: Inode) -> None:
        if inode.parity_block:
            if self.checksums is not None and self.data_csum:
                self.checksums.forget(inode.parity_block)
            self._free_block(inode.parity_block, "parity")
            inode.parity_block = 0

    def _shrink(self, ino: int, inode: Inode, new_size: int, kind: str = "data") -> None:
        super()._shrink(ino, inode, new_size, kind)
        # Parity covers the remaining blocks; recompute it.
        if self.data_parity and inode.parity_block and kind == "data":
            bs = self.block_size
            acc = bytearray(bs)
            nblocks = (new_size + bs - 1) // bs
            intact = True
            for fb in range(nblocks):
                bno, _ = self._bmap(inode, fb, allocate=False)
                if bno == 0:
                    continue
                try:
                    data = self._plain_bread(bno)
                except DiskError:
                    intact = False
                    break
                for i in range(bs):
                    acc[i] ^= data[i]
            if intact:
                frozen = bytes(acc)
                self.journal.add_ordered(inode.parity_block, frozen)
                self._on_block_contents_change(inode.parity_block, frozen, "data")

    # ==================================================================
    # Eager detection: in-file-system scrubbing (§3.2)
    # ==================================================================

    def scrub(self) -> Dict[str, int]:
        """Walk every covered block, verifying checksums and probing
        for latent sector errors; recover damaged blocks from replicas
        or parity and rewrite the repaired home copy.

        §3.2: scrubbing is "particularly valuable if a means for
        recovery is available" — which is exactly what Mr/Dp provide.
        Returns counters: scanned / latent / corrupt / repaired / lost.
        """
        self._ensure_mounted()
        stats = {"scanned": 0, "latent": 0, "corrupt": 0,
                 "repaired": 0, "lost": 0}
        cfg = self.config
        self.journal.begin()
        for block in range(cfg.groups_start, cfg.total_blocks):
            kind = self._block_kind(block)
            if kind is None:
                continue
            stats["scanned"] += 1
            damaged = False
            try:
                self._read_with_verify(block)
            except CorruptionDetected:
                stats["corrupt"] += 1
                damaged = True
            except DiskError:
                stats["latent"] += 1
                damaged = True
            if not damaged:
                continue
            recovered = self._scrub_recover(block, kind)
            if recovered is None:
                stats["lost"] += 1
                self.syslog.error(self.name, "scrub-loss",
                                  f"block {block} unrecoverable", block=block)
            else:
                stats["repaired"] += 1
        if not self._read_only:
            self.journal.commit()
            self.journal.checkpoint()
        self.syslog.info(self.name, "scrub-complete",
                         f"scanned {stats['scanned']}, repaired {stats['repaired']}, "
                         f"lost {stats['lost']}")
        return stats

    def _scrub_recover(self, block: int, kind: str) -> Optional[bytes]:
        if kind == "meta":
            return self._recover_meta_read(block, None)
        if self.block_type(block) == "parity":
            return self._rebuild_parity_block(block)
        # Data block: find the owning inode and rebuild from parity.
        owner = self._owner_of(block)
        if owner is None:
            return None
        ino, inode, file_block = owner
        data = self._recover_data_read(ino, inode, file_block, block, None)
        if data is not None:
            # Rewrite the repaired home copy with the transaction.
            self.journal.add_ordered(block, data)
            self._on_block_contents_change(block, data, "data")
        return data

    def _rebuild_parity_block(self, block: int) -> Optional[bytes]:
        """Recompute a damaged parity block from its file's data."""
        cfg = self.config
        for ino in range(1, cfg.total_inodes + 1):
            try:
                inode = self._iget(ino)
            except FSError:
                continue
            if not inode.is_allocated or inode.parity_block != block:
                continue
            bs = self.block_size
            acc = bytearray(bs)
            for fb in range((inode.size + bs - 1) // bs):
                try:
                    bno, _ = self._bmap(inode, fb, allocate=False)
                    if bno == 0:
                        continue
                    data = self._plain_bread(bno)
                except (FSError, DiskError):
                    return None  # cannot rebuild with a second failure
                for i in range(bs):
                    acc[i] ^= data[i]
            frozen = bytes(acc)
            self.journal.add_ordered(block, frozen)
            self._on_block_contents_change(block, frozen, "data")
            return frozen
        return None

    def _owner_of(self, block: int):
        """(ino, inode, file block index) of the file owning *block*."""
        cfg = self.config
        for ino in range(1, cfg.total_inodes + 1):
            try:
                inode = self._iget(ino)
            except FSError:
                continue
            if not inode.is_allocated:
                continue
            if inode.parity_block == block:
                return None  # parity itself: rebuilt lazily from data
            nblocks = (inode.size + self.block_size - 1) // self.block_size
            for fb in range(nblocks):
                try:
                    bno, _ = self._bmap(inode, fb, allocate=False)
                except FSError:
                    break
                if bno == block:
                    return ino, inode, fb
        return None

    # ==================================================================
    # Gray-box oracle additions
    # ==================================================================

    @staticmethod
    def _static_type_table(cfg):
        return _static_types_ixt3(cfg)

    def redundancy_types(self) -> List[str]:
        return ["replica", "parity"]
