"""The file systems under study: ext3, ReiserFS, JFS, NTFS — and ixt3."""
