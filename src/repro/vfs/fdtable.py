"""Open-file bookkeeping shared by all simulated file systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import Errno, FSError

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_ACCMODE = 3
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000


@dataclass
class OpenFile:
    """State of one open descriptor."""

    ino: int
    flags: int
    offset: int = 0

    @property
    def readable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)


@dataclass
class FDTable:
    """Allocates small integer descriptors, POSIX-style (lowest free)."""

    _open: Dict[int, OpenFile] = field(default_factory=dict)
    _next_hint: int = 3  # 0-2 notionally reserved for std streams

    def allocate(self, ino: int, flags: int) -> int:
        fd = self._next_hint
        while fd in self._open:
            fd += 1
        self._open[fd] = OpenFile(ino=ino, flags=flags)
        return fd

    def get(self, fd: int) -> OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise FSError(Errno.EBADF, f"fd {fd} is not open") from None

    def close(self, fd: int) -> OpenFile:
        if fd not in self._open:
            raise FSError(Errno.EBADF, f"fd {fd} is not open")
        return self._open.pop(fd)

    def close_all(self) -> None:
        self._open.clear()

    def open_inodes(self):
        return [f.ino for f in self._open.values()]

    def __len__(self) -> int:
        return len(self._open)
