"""The *generic* file-system layer (Figure 1's upper half).

Real kernels split file-system code into a generic component shared by
all file systems and a specific component per file system.  The paper
identifies this split as a driver of *failure-policy diffusion*: the
generic layer has its own failure handling (e.g. the generic code JFS
calls retries failed metadata reads exactly once) that may disagree
with the specific layer's policy.

We reproduce the split: every simulated file system reads buffers
through a :class:`BufferLayer` configured with *its* kernel's generic
retry policy, while the FS-specific code above layers its own checks —
so inconsistent combinations arise exactly the way the paper describes.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import DiskError
from repro.common.syslog import Severity, SysLog
from repro.disk.disk import BlockDevice


class BufferLayer:
    """Block reads/writes with a configurable generic retry policy.

    ``read_retries`` / ``write_retries`` are *extra* attempts after the
    first failure (NTFS reads use up to 6 extra attempts — "up to seven
    times"; the Linux generic layer used by JFS retries once; ext3 and
    ReiserFS never retry through this layer).
    """

    def __init__(
        self,
        device: BlockDevice,
        syslog: SysLog,
        source: str,
        read_retries: int = 0,
        write_retries: int = 0,
    ):
        self.device = device
        self.syslog = syslog
        self.source = source
        self.read_retries = read_retries
        self.write_retries = write_retries

    @property
    def block_size(self) -> int:
        return self.device.block_size

    def bread(self, block: int, retries: Optional[int] = None) -> bytes:
        """Read one block, retrying per the generic policy.  Raises
        :class:`ReadError` after all attempts fail."""
        attempts = 1 + (self.read_retries if retries is None else retries)
        last: Optional[DiskError] = None
        for attempt in range(attempts):
            try:
                return self.device.read_block(block)
            except DiskError as exc:
                last = exc
                if attempt + 1 < attempts:
                    self.syslog.recovery(
                        self.source, "read-retry",
                        f"retrying read of block {block} (attempt {attempt + 2})",
                        mechanism="retry", severity=Severity.WARNING,
                        block=block,
                    )
        assert last is not None
        raise last

    def bwrite(self, block: int, data: bytes, retries: Optional[int] = None) -> None:
        """Write one block, retrying per the generic policy."""
        attempts = 1 + (self.write_retries if retries is None else retries)
        last: Optional[DiskError] = None
        for attempt in range(attempts):
            try:
                self.device.write_block(block, data)
                return
            except DiskError as exc:
                last = exc
                if attempt + 1 < attempts:
                    self.syslog.recovery(
                        self.source, "write-retry",
                        f"retrying write of block {block} (attempt {attempt + 2})",
                        mechanism="retry", severity=Severity.WARNING,
                        block=block,
                    )
        assert last is not None
        raise last

    def bwrite_nocheck(self, block: int, data: bytes) -> None:
        """Issue a write and *discard the return code* — detection level
        D_zero.  This is how ext3, JFS and (for user data) NTFS handle
        write errors in the study; the error vanishes here, exactly as it
        does in those kernels."""
        try:
            self.device.write_block(block, data)
        except DiskError:
            pass
