"""Path handling for the simulated file systems.

Path traversal is one of the paper's *generic* workloads (Table 3):
every pathname lookup walks directory blocks and inodes, so faults in
those structures surface through any call that takes a path.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import Errno, FSError

MAX_NAME_LEN = 255
MAX_SYMLINK_DEPTH = 8


def split_path(path: str) -> List[str]:
    """Split *path* into components, validating each name."""
    if not path:
        raise FSError(Errno.ENOENT, "empty path")
    parts = [p for p in path.split("/") if p not in ("", ".")]
    for name in parts:
        if len(name) > MAX_NAME_LEN:
            raise FSError(Errno.ENAMETOOLONG, name)
    return parts


def normalize(path: str, cwd: str = "/") -> str:
    """Resolve *path* against *cwd*, collapsing ``.`` and ``..`` lexically."""
    if not path.startswith("/"):
        path = cwd.rstrip("/") + "/" + path
    stack: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if stack:
                stack.pop()
            continue
        stack.append(part)
    return "/" + "/".join(stack)


def dirname_basename(path: str) -> Tuple[str, str]:
    """Split into (parent path, final component); final must exist."""
    parts = split_path(path)
    if not parts:
        raise FSError(Errno.EINVAL, f"path {path!r} has no final component")
    parent = "/" + "/".join(parts[:-1])
    return parent, parts[-1]


def is_ancestor(ancestor: str, path: str) -> bool:
    """True when *ancestor* is a (non-strict) prefix directory of *path*.
    Used by ``rename`` to refuse moving a directory into itself."""
    a = normalize(ancestor)
    p = normalize(path)
    return p == a or p.startswith(a.rstrip("/") + "/")
