"""The VFS layer: abstract FS API, paths, fd table, generic buffer layer."""

from repro.vfs.api import FileSystem
from repro.vfs.fdtable import (
    FDTable,
    O_ACCMODE,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    OpenFile,
)
from repro.vfs.generic import BufferLayer
from repro.vfs.paths import dirname_basename, is_ancestor, normalize, split_path
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    DEFAULT_LINK_MODE,
    F_OK,
    R_OK,
    S_IFDIR,
    S_IFLNK,
    S_IFREG,
    StatResult,
    StatVFS,
    W_OK,
    X_OK,
)

__all__ = [
    "BufferLayer",
    "DEFAULT_DIR_MODE",
    "DEFAULT_FILE_MODE",
    "DEFAULT_LINK_MODE",
    "FDTable",
    "F_OK",
    "FileSystem",
    "O_ACCMODE",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "OpenFile",
    "R_OK",
    "S_IFDIR",
    "S_IFLNK",
    "S_IFREG",
    "StatResult",
    "StatVFS",
    "W_OK",
    "X_OK",
    "dirname_basename",
    "is_ancestor",
    "normalize",
    "split_path",
]
