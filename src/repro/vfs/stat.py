"""Stat structures returned through the VFS API."""

from __future__ import annotations

import stat as _stat
from dataclasses import dataclass

S_IFDIR = _stat.S_IFDIR
S_IFREG = _stat.S_IFREG
S_IFLNK = _stat.S_IFLNK

#: Default permission bits for newly created objects.
DEFAULT_FILE_MODE = S_IFREG | 0o644
DEFAULT_DIR_MODE = S_IFDIR | 0o755
DEFAULT_LINK_MODE = S_IFLNK | 0o777

R_OK = 4
W_OK = 2
X_OK = 1
F_OK = 0


@dataclass(frozen=True)
class StatResult:
    """Result of ``stat``/``lstat`` — the fields workloads compare."""

    ino: int
    mode: int
    nlink: int
    uid: int
    gid: int
    size: int
    atime: float
    mtime: float
    ctime: float

    @property
    def is_dir(self) -> bool:
        return _stat.S_ISDIR(self.mode)

    @property
    def is_file(self) -> bool:
        return _stat.S_ISREG(self.mode)

    @property
    def is_symlink(self) -> bool:
        return _stat.S_ISLNK(self.mode)

    @property
    def perm_bits(self) -> int:
        return _stat.S_IMODE(self.mode)


@dataclass(frozen=True)
class StatVFS:
    """Result of ``statfs`` — capacity accounting for the volume."""

    block_size: int
    total_blocks: int
    free_blocks: int
    total_inodes: int
    free_inodes: int

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks
