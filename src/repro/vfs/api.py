"""The VFS interface every simulated file system implements.

Mirrors the system-call surface the fingerprinting workloads exercise
(Table 3): the *singlets* each stress one call; the *generics* (path
traversal, recovery, log writes) span many.  The interface also exposes
the gray-box hooks fingerprinting needs: a block-type oracle and the
list of on-disk block types (Table 4).
"""

from __future__ import annotations

import abc
import functools
from typing import Dict, List, Optional

from repro.common.errors import Errno, FSError
from repro.vfs.fdtable import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.vfs.paths import normalize
from repro.vfs.stat import F_OK, StatResult, StatVFS

#: The syscall surface auto-wrapped in trace spans (category ``op``).
#: Every concrete override of these methods gets span instrumentation
#: via :meth:`FileSystem.__init_subclass__` — file systems never
#: hand-instrument their entry points.
_TRACED_OPS = frozenset({
    "mount", "unmount", "sync",
    "creat", "open", "close", "read", "write", "truncate",
    "link", "unlink", "symlink", "readlink",
    "mkdir", "rmdir", "rename", "getdirentries",
    "stat", "lstat", "statfs", "chmod", "chown", "utimes", "fsync",
})


def _trace_op(name: str, fn):
    """Wrap one syscall implementation in an op span.

    The fast path — no tracer bound to the FS's event stream, or
    tracing disabled — is two attribute probes and a call, so untraced
    runs (the default) keep their behaviour and event digests exactly.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        tracer = getattr(getattr(self, "events", None), "tracer", None)
        if tracer is None or not tracer.enabled:
            return fn(self, *args, **kwargs)
        detail = ""
        if args and isinstance(args[0], (str, int)):
            detail = str(args[0])
        span_id = tracer.start(name, "op", detail=detail,
                               source=getattr(self, "name", "fs"))
        try:
            result = fn(self, *args, **kwargs)
        except BaseException:
            tracer.end(span_id, "error")
            raise
        tracer.end(span_id)
        return result

    wrapper._repro_traced = True
    return wrapper


class FileSystem(abc.ABC):
    """Abstract file system: namespace + file I/O + lifecycle + gray-box.

    Paths are ``/``-separated; relative paths resolve against the
    per-mount ``cwd`` maintained by :meth:`chdir` (and clamped by
    :meth:`chroot`), so the path-traversal workload behaves as on a real
    system.
    """

    #: Human name ("ext3", "reiserfs", "jfs", "ntfs", "ixt3").
    name: str = "abstract"
    #: Table-4 inventory: block type -> purpose.
    BLOCK_TYPES: Dict[str, str] = {}

    def __init_subclass__(cls, **kwargs):
        """Auto-instrument the syscall surface with trace spans.

        Each method of :data:`_TRACED_OPS` *defined by this subclass*
        is wrapped once (inherited already-wrapped methods are left
        alone), so every file system — including ones defined in tests
        — emits op spans when tracing is enabled on its event stream,
        with zero per-FS code.
        """
        super().__init_subclass__(**kwargs)
        for name in _TRACED_OPS:
            fn = cls.__dict__.get(name)
            if (
                fn is None
                or not callable(fn)
                or getattr(fn, "_repro_traced", False)
                or getattr(fn, "__isabstractmethod__", False)
            ):
                continue
            setattr(cls, name, _trace_op(name, fn))

    # -- lifecycle -----------------------------------------------------------

    @abc.abstractmethod
    def mount(self) -> None:
        """Attach to the device: read the superblock, recover the journal."""

    @abc.abstractmethod
    def unmount(self) -> None:
        """Flush and detach."""

    @abc.abstractmethod
    def sync(self) -> None:
        """Force dirty state to disk (commit the running transaction)."""

    @property
    @abc.abstractmethod
    def mounted(self) -> bool: ...

    @property
    @abc.abstractmethod
    def read_only(self) -> bool:
        """True after the FS degraded itself to read-only (R_stop)."""

    # -- namespace operations --------------------------------------------------

    @abc.abstractmethod
    def creat(self, path: str, mode: int = 0o644) -> int: ...

    @abc.abstractmethod
    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int: ...

    @abc.abstractmethod
    def close(self, fd: int) -> None: ...

    @abc.abstractmethod
    def read(self, fd: int, size: int, offset: Optional[int] = None) -> bytes: ...

    @abc.abstractmethod
    def write(self, fd: int, data: bytes, offset: Optional[int] = None) -> int: ...

    @abc.abstractmethod
    def truncate(self, path: str, size: int) -> None: ...

    @abc.abstractmethod
    def link(self, existing: str, new: str) -> None: ...

    @abc.abstractmethod
    def unlink(self, path: str) -> None: ...

    @abc.abstractmethod
    def symlink(self, target: str, linkpath: str) -> None: ...

    @abc.abstractmethod
    def readlink(self, path: str) -> str: ...

    @abc.abstractmethod
    def mkdir(self, path: str, mode: int = 0o755) -> None: ...

    @abc.abstractmethod
    def rmdir(self, path: str) -> None: ...

    @abc.abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    @abc.abstractmethod
    def getdirentries(self, path: str) -> List[str]: ...

    @abc.abstractmethod
    def stat(self, path: str) -> StatResult: ...

    @abc.abstractmethod
    def lstat(self, path: str) -> StatResult: ...

    @abc.abstractmethod
    def statfs(self) -> StatVFS: ...

    @abc.abstractmethod
    def chmod(self, path: str, mode: int) -> None: ...

    @abc.abstractmethod
    def chown(self, path: str, uid: int, gid: int) -> None: ...

    @abc.abstractmethod
    def utimes(self, path: str, atime: float, mtime: float) -> None: ...

    @abc.abstractmethod
    def fsync(self, fd: int) -> None: ...

    # -- cwd / root (implemented here; lookup is FS-specific) --------------------

    def __init__(self) -> None:
        self.cwd = "/"
        self.root = "/"

    def chdir(self, path: str) -> None:
        """Change the working directory (validates the target is a dir)."""
        target = self.resolve(path)
        st = self.stat(target)
        if not st.is_dir:
            raise FSError(Errno.ENOTDIR, path)
        self.cwd = target

    def chroot(self, path: str) -> None:
        """Confine subsequent lookups beneath *path*."""
        target = self.resolve(path)
        st = self.stat(target)
        if not st.is_dir:
            raise FSError(Errno.ENOTDIR, path)
        self.root = target
        self.cwd = target

    def resolve(self, path: str) -> str:
        """Resolve *path*: absolute paths are interpreted beneath the
        (chroot) root; relative paths against the cwd; ``..`` cannot
        escape the root."""
        if path.startswith("/"):
            root = self.root.rstrip("/")
            if self.root != "/" and (path == self.root or path.startswith(root + "/")):
                # Already a resolved real path (internal re-resolution).
                resolved = normalize(path)
            else:
                resolved = normalize(root + "/" + path.lstrip("/"))
        else:
            resolved = normalize(path, self.cwd)
        if self.root != "/" and not (
            resolved == self.root or resolved.startswith(self.root.rstrip("/") + "/")
        ):
            resolved = self.root
        return resolved

    def access(self, path: str, mode: int = F_OK) -> bool:
        """POSIX ``access``: existence plus permission-bit check."""
        try:
            st = self.stat(path)
        except FSError:
            return False
        if mode == F_OK:
            return True
        # Owner-class permission check (single-user simulation).
        perm = (st.perm_bits >> 6) & 0o7
        return (perm & mode) == mode

    # -- crash simulation (used by the recovery workload) -------------------------

    def crash(self) -> None:
        """Simulate power loss: drop volatile state without flushing."""
        raise NotImplementedError(f"{self.name} does not support crash simulation")

    def crash_after(self, ops) -> None:
        """Run *ops* so their effects are durable in the write-ahead log
        but not yet checkpointed to home locations, then crash.  Used to
        prepare images for the FS-recovery workload."""
        raise NotImplementedError(f"{self.name} does not support crash simulation")

    # -- gray-box hooks for fingerprinting ---------------------------------------

    @abc.abstractmethod
    def block_type(self, block: int) -> Optional[str]:
        """Current role of *block* (the type oracle for fault injection)."""

    def redundancy_types(self) -> List[str]:
        """Block types that hold redundant copies; reads of these during
        recovery are inferred as R_redundancy.  Empty for most systems —
        the paper's headline finding."""
        return []

    # -- convenience helpers used by workloads and examples -----------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create/overwrite *path* with *data* (helper, not a syscall)."""
        fd = self.open(path, O_WRONLY | O_CREAT)
        try:
            self.truncate_fd_zero(fd, path)
            self.write(fd, data, offset=0)
        finally:
            try:
                self.close(fd)
            except FSError:
                pass  # never mask the original failure (e.g. a panic)

    def truncate_fd_zero(self, fd: int, path: str) -> None:
        """Hook for write_file; default goes through truncate(path, 0)."""
        self.truncate(path, 0)

    def read_file(self, path: str) -> bytes:
        fd = self.open(path, O_RDONLY)
        try:
            st = self.stat(path)
            return self.read(fd, st.size, offset=0)
        finally:
            try:
                self.close(fd)
            except FSError:
                pass

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FSError:
            return False


__all__ = [
    "FileSystem",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_WRONLY",
]
