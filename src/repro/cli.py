"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``fingerprint FS``
    Run the failure-policy fingerprinting matrix against one of the
    simulated file systems and print the Figure-2-style panels.

``crash FS``
    Record a workload's write stream, enumerate bounded crash states
    (prefix cuts + torn epochs), replay each through recovery, and
    report every oracle violation with its reproducing state key.

``trace FS --workload W``
    Run one (or all) of the crash workloads with span tracing on and
    write the Chrome trace-event JSON — loadable in Perfetto / DevTools
    — plus a metrics snapshot.  ``fingerprint`` and ``crash`` grow
    ``--trace`` / ``--metrics`` flags that do the same for full runs.

``array``
    Run the member-fault fingerprint rows against the redundancy
    arrays (mirror / rotating parity / RDP) — same IRON D_*/R_*
    classification machinery, one layer down.

``fleet``
    Run the Monte Carlo reliability campaign (geometry × policy loss
    matrix) and exit with a one-line incident summary per cell.

``report``
    Aggregate a campaign into a schema-validated
    ``campaign_report.json`` — classified incidents with provenance
    refs plus flight-recorder time series; ``--trace-trial
    GEOMETRY/POLICY:N`` re-runs one pure trial through the tracer and
    exports a Perfetto timeline, ``--profile`` adds the wall-time
    self-time attribution table.

``table6``
    Run the Table-6 overhead sweep (all 32 ixt3 variants by default)
    and print measured-vs-paper normalized run times.

``space``
    Print the §6.2 space-overhead analysis.

``taxonomy``
    Print the IRON detection and recovery taxonomies (Tables 1-2).

``fsck-demo``
    Corrupt a synthetic ext3 volume in several classic ways, then show
    fsck detecting and repairing the damage (R_repair).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def _write_observability(
    events,
    metrics_snapshot,
    trace_out: Optional[str],
    metrics_out: Optional[str],
) -> None:
    """Write the Chrome trace and/or metrics snapshot files for a run.

    The metrics snapshot lands both as JSON (``repro-metrics/1``) and,
    next to it, as Prometheus text exposition (``.prom``).
    """
    from repro.obs.metrics import render_prometheus
    from repro.obs.trace import write_chrome_trace

    if trace_out and events is not None:
        write_chrome_trace(events, trace_out)
        print(f"chrome trace written to {trace_out} (load in ui.perfetto.dev)")
    if metrics_out and metrics_snapshot is not None:
        path = Path(metrics_out)
        path.write_text(json.dumps(metrics_snapshot, indent=2, sort_keys=True) + "\n")
        prom = path.with_suffix(".prom")
        prom.write_text(render_prometheus(metrics_snapshot))
        print(f"metrics written to {path} and {prom}")


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.bench.timing import fingerprint_record, record_entry, timed
    from repro.disk import CorruptionMode
    from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
    from repro.fingerprint.adapters import ADAPTERS
    from repro.taxonomy import render_full_figure

    if args.fs not in ADAPTERS:
        print(f"unknown file system {args.fs!r}; pick from {sorted(ADAPTERS)}",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    adapter = ADAPTERS[args.fs]()
    workloads = None
    if args.workloads:
        unknown = [k for k in args.workloads if k not in WORKLOAD_BY_KEY]
        if unknown:
            print(f"unknown workload letters {''.join(unknown)!r}; "
                  f"pick from 'a'..'t'", file=sys.stderr)
            return 2
        workloads = [WORKLOAD_BY_KEY[k] for k in args.workloads]
    mode = CorruptionMode.FIELD if args.field_corruption else CorruptionMode.NOISE
    fp = Fingerprinter(adapter, workloads=workloads, corruption_mode=mode,
                       progress=(print if args.verbose else None),
                       jobs=args.jobs, trace=args.trace, metrics=args.metrics)
    if args.jobs > 1:
        # Spawn the persistent workers before the timed region so the
        # recorded wall-clock measures fingerprinting, not pool start-up
        # (skipped when the run will fall back to in-process serial).
        from repro.common.pool import effective_jobs, warm_pool

        if effective_jobs(args.jobs) > 1:
            warm_pool(args.jobs)
    try:
        matrix, wall_s = timed(fp.run)
    except Exception as exc:
        if not args.no_bench_json:
            from repro.bench.timing import failure_record

            record_entry(f"fingerprint_{args.fs}",
                         failure_record(exc, jobs=args.jobs, fs=args.fs))
        raise
    print(render_full_figure(matrix))
    covered, total = matrix.coverage()
    print()
    print(f"{fp.tests_run} fault-injection tests; "
          f"{covered}/{total} cells show some detection or recovery")
    if args.trace:
        print(f"span-tree digest: {fp.span_digest()}")
    _write_observability(
        fp.merged_trace() if args.trace else None,
        fp.merged_metrics() if args.metrics else None,
        args.trace_out or (f"trace_fingerprint_{args.fs}.json" if args.trace else None),
        args.metrics_out or (f"metrics_fingerprint_{args.fs}.json" if args.metrics else None),
    )
    if not args.no_bench_json:
        path = record_entry(f"fingerprint_{args.fs}",
                            fingerprint_record(fp, matrix, wall_s))
        print(f"timing written to {path} ({wall_s:.2f}s wall, jobs={args.jobs})")
    return 0


def _cmd_crash(args: argparse.Namespace) -> int:
    from repro.bench.timing import crash_json_path, crash_record, record_entry, timed
    from repro.crash import CRASH_PROFILES, CRASH_WORKLOADS, explore

    if args.list:
        for key in sorted(CRASH_WORKLOADS):
            print(f"{key:10} {CRASH_WORKLOADS[key].name}")
        return 0
    if args.fs not in CRASH_PROFILES:
        print(f"unknown file system {args.fs!r}; pick from {sorted(CRASH_PROFILES)}",
              file=sys.stderr)
        return 2
    if args.workload not in CRASH_WORKLOADS:
        print(f"unknown workload {args.workload!r}; pick from "
              f"{sorted(CRASH_WORKLOADS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.jobs > 1:
        from repro.common.pool import effective_jobs, warm_pool

        if effective_jobs(args.jobs) > 1:
            warm_pool(args.jobs)
    try:
        report, wall_s = timed(lambda: explore(
            args.fs, args.workload, jobs=args.jobs,
            max_torn_per_epoch=args.max_torn,
            progress=(print if args.verbose else None),
            trace=args.trace,
        ))
    except Exception as exc:
        if not args.no_bench_json:
            from repro.bench.timing import failure_record

            record_entry(
                f"crash_{args.fs}_{args.workload}_j{args.jobs}",
                failure_record(exc, jobs=args.jobs, profile=args.fs,
                               workload=args.workload),
                path=crash_json_path(),
            )
        raise
    print(report.render())
    if args.trace:
        print(f"span-tree digest: {report.span_digest()}")
        _write_observability(
            report.merged_trace(), None,
            args.trace_out or f"trace_crash_{args.fs}_{args.workload}.json",
            None,
        )
    if not args.no_bench_json:
        path = record_entry(
            f"crash_{args.fs}_{args.workload}_j{args.jobs}",
            crash_record(report, wall_s),
            path=crash_json_path(),
        )
        print(f"timing written to {path} ({wall_s:.2f}s wall, jobs={args.jobs})")
    return 1 if (args.fail_on_violation and report.violations) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.crash import CRASH_PROFILES, CRASH_WORKLOADS
    from repro.obs.capture import trace_workloads

    if args.list:
        for key in sorted(CRASH_WORKLOADS):
            print(f"{key:10} {CRASH_WORKLOADS[key].name}")
        return 0
    if args.fs not in CRASH_PROFILES:
        print(f"unknown file system {args.fs!r}; pick from {sorted(CRASH_PROFILES)}",
              file=sys.stderr)
        return 2
    keys = args.workload or None
    if keys:
        unknown = [k for k in keys if k not in CRASH_WORKLOADS]
        if unknown:
            print(f"unknown workloads {unknown}; pick from "
                  f"{sorted(CRASH_WORKLOADS)}", file=sys.stderr)
            return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    capture = trace_workloads(args.fs, keys, jobs=args.jobs)
    merged = capture.merged()
    for label, events in capture.streams:
        print(f"{label:10} {len(events)} events")
    print(f"span-tree digest: {capture.span_digest()}")
    suffix = "-".join(k for k, _ in capture.streams)
    _write_observability(
        merged,
        capture.metrics if not args.no_metrics else None,
        args.output or f"trace_{args.fs}_{suffix}.json",
        args.metrics_out or (
            None if args.no_metrics else f"metrics_{args.fs}_{suffix}.json"
        ),
    )
    return 0


def _cmd_table6(args: argparse.Namespace) -> int:
    from repro.bench import VARIANT_ORDER, run_table6

    benches = args.benches.split(",") if args.benches else None
    variants = VARIANT_ORDER
    if args.quick:
        variants = [v for v in VARIANT_ORDER if len(v) <= 1] + [VARIANT_ORDER[-1]]
    run = run_table6(benches=benches, variants=list(variants),
                     progress=(print if args.verbose else None))
    # Partial variant sets can't index the full table; render manually.
    if args.quick:
        for bench, rows in run.results.items():
            base = rows[0].seconds
            print(f"{bench}:")
            for r in rows:
                print(f"  {r.label:18} {r.seconds / base:5.2f}  ({r.seconds:.3f}s)")
    else:
        print(run.render())
    return 0


def _cmd_array(args: argparse.Namespace) -> int:
    from repro.bench.timing import array_json_path, record_entry, timed
    from repro.redundancy.fingerprint import (
        ARRAY_GEOMETRIES,
        run_array_fingerprint,
    )

    known = [label for label, _, _ in ARRAY_GEOMETRIES]
    labels = args.geometry or None
    if labels:
        unknown = [label for label in labels if label not in known]
        if unknown:
            print(f"unknown geometry labels {unknown}; pick from {known}",
                  file=sys.stderr)
            return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.jobs > 1:
        from repro.common.pool import effective_jobs, warm_pool

        if effective_jobs(args.jobs) > 1:
            warm_pool(args.jobs)
    fp, wall_s = timed(lambda: run_array_fingerprint(
        jobs=args.jobs, labels=labels,
        progress=(print if args.verbose else None)))
    print(fp.render())
    if not args.no_bench_json:
        record = {
            "wall_s": round(wall_s, 6),
            "jobs": args.jobs,
            "cells": sum(len(m.cells) for m in fp.matrices.values()),
            "geometries": sorted(fp.matrices),
            f"event_digest_jobs{args.jobs}": fp.digest,
        }
        path = record_entry(
            f"array_fingerprint_j{args.jobs}", record,
            path=array_json_path(),
        )
        print(f"timing written to {path} ({wall_s:.2f}s wall, jobs={args.jobs})")
    return 0


def _fleet_spec_from_args(args: argparse.Namespace):
    """Build the FleetSpec shared by ``fleet`` and ``report`` from the
    common flag set; returns None (with a message on stderr) on bad
    input."""
    from repro.fleet.spec import FleetSpec

    spec = FleetSpec.load(Path(args.spec)) if args.spec else FleetSpec()
    changes = {}
    if args.trials is not None:
        changes["trials"] = args.trials
    if args.seed is not None:
        changes["seed"] = args.seed
    if args.mission_hours is not None:
        changes["mission_hours"] = args.mission_hours
    if args.geometry:
        known = {g.label: g for g in spec.geometries}
        unknown = [label for label in args.geometry if label not in known]
        if unknown:
            print(f"unknown geometry labels {unknown}; "
                  f"pick from {sorted(known)}", file=sys.stderr)
            return None
        changes["geometries"] = tuple(known[g] for g in args.geometry)
    if args.policy:
        known_p = {p.name: p for p in spec.policies}
        unknown = [name for name in args.policy if name not in known_p]
        if unknown:
            print(f"unknown policy names {unknown}; "
                  f"pick from {sorted(known_p)}", file=sys.stderr)
            return None
        changes["policies"] = tuple(known_p[p] for p in args.policy)
    if args.no_crosscheck:
        changes["crosscheck"] = False
    if changes:
        spec = spec.scaled(**changes)
    if spec.trials < 1:
        print("--trials must be >= 1", file=sys.stderr)
        return None
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return None
    return spec


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.bench.timing import fleet_json_path, fleet_record, record_entry, timed
    from repro.fleet.campaign import run_fleet

    spec = _fleet_spec_from_args(args)
    if spec is None:
        return 2
    if args.jobs > 1:
        from repro.common.pool import effective_jobs, warm_pool

        if effective_jobs(args.jobs) > 1:
            warm_pool(args.jobs)
    report, wall_s = timed(lambda: run_fleet(
        spec, jobs=args.jobs,
        progress=(print if args.verbose else None)))
    print(report.render())
    summary = report.incident_summary()
    if summary:
        print()
        print("incidents (top loss mode per cell):")
        for line in summary:
            print(f"  {line}")
    if report.crosscheck is not None and not report.crosscheck["within_tolerance"]:
        print("::error::mirror2 simulated loss probability outside the "
              "analytic tolerance", file=sys.stderr)
        return 1
    if args.metrics_out:
        snapshot = report.metrics().snapshot()
        Path(args.metrics_out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"metrics written to {args.metrics_out}")
    if not args.no_bench_json:
        record = fleet_record(
            report, wall_s,
            **{f"event_digest_jobs{args.jobs}": report.digest,
               f"incident_digest_jobs{args.jobs}": report.incident_digest})
        path = record_entry(f"fleet_{spec.name}_j{args.jobs}", record,
                            path=fleet_json_path())
        print(f"timing written to {path} ({wall_s:.2f}s wall, jobs={args.jobs})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.fleet.campaign import run_fleet
    from repro.obs.metrics import schema_root, validate_json

    spec = _fleet_spec_from_args(args)
    if spec is None:
        return 2

    if args.trace_trial:
        return _report_trace_trial(args, spec)

    if args.jobs > 1:
        from repro.common.pool import effective_jobs, warm_pool

        if effective_jobs(args.jobs) > 1:
            warm_pool(args.jobs)
    report = run_fleet(spec, jobs=args.jobs,
                       progress=(print if args.verbose else None),
                       profile=args.profile)
    body = report.campaign_report()
    errors = validate_json(
        body, schema_root() / "campaign_report.schema.json")
    if errors:
        for error in errors[:20]:
            print(f"::error::campaign report schema: {error}",
                  file=sys.stderr)
        return 1
    out = Path(args.out)
    out.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    print(report.render())
    print()
    print(f"{len(report.incidents)} incidents across "
          f"{len(report.cells)} cells:")
    for line in report.incident_summary():
        print(f"  {line}")
    if report.profile is not None:
        from repro.obs.trace import render_profile

        print()
        print(render_profile(report.profile))
    print()
    print(f"campaign report written to {out} (schema-valid)")
    return 0


def _report_trace_trial(args: argparse.Namespace, spec) -> int:
    """Re-run one pure trial with span tracing and export its Perfetto
    timeline (plus the raw flight-recorder samples)."""
    from repro.fleet.sim import run_trial
    from repro.obs.trace import write_chrome_trace

    cell_text, _, trial_text = args.trace_trial.rpartition(":")
    geometry_label, _, policy_name = cell_text.partition("/")
    try:
        trial = int(trial_text)
    except ValueError:
        trial = -1
    geometries = {g.label: g for g in spec.geometries}
    policies = {p.name: p for p in spec.policies}
    if (trial < 0 or geometry_label not in geometries
            or policy_name not in policies):
        print(f"--trace-trial wants GEOMETRY/POLICY:N "
              f"(geometries {sorted(geometries)}, "
              f"policies {sorted(policies)}), got {args.trace_trial!r}",
              file=sys.stderr)
        return 2
    outcome = run_trial(spec, geometries[geometry_label],
                        policies[policy_name], trial, trace=True)
    trace_out = args.trace_out or \
        f"trace_fleet_{geometry_label}_{policy_name}_{trial}.json"
    write_chrome_trace(outcome.stream, trace_out)
    flight_out = Path(trace_out).with_suffix(".flight.json")
    flight_out.write_text(
        json.dumps(outcome.flight, indent=2, sort_keys=True) + "\n")
    print(f"trial {geometry_label}/{policy_name}#{trial}: "
          f"{outcome.outcome}"
          + (f" at {outcome.ttdl_hours}h via {outcome.site}"
             if outcome.site else "")
          + f", {outcome.events} events")
    print(f"chrome trace written to {trace_out} (load in ui.perfetto.dev)")
    print(f"flight-recorder samples written to {flight_out}")
    return 0


#: Digest families compared within one BENCH entry: all keys sharing a
#: prefix must agree across jobs widths.
_DIGEST_FAMILIES = ("event_digest", "incident_digest")


def _digest_mismatches(entries) -> List[str]:
    """Entries whose own jobs-width digests disagree within a family —
    a determinism failure, not a perf regression."""
    bad = []
    for name, record in sorted(entries.items()):
        if not isinstance(record, dict):
            continue
        for family in _DIGEST_FAMILIES:
            digests = {value for key, value in record.items()
                       if key.startswith(family) and value}
            if len(digests) > 1:
                bad.append(name)
                break
    return bad


def _cmd_bench(args: argparse.Namespace) -> int:
    """Compare two BENCH timing JSONs entry by entry (warn-only gate)."""
    if not args.compare:
        print("nothing to do: pass --compare OLD.json NEW.json", file=sys.stderr)
        return 2
    old_path, new_path = args.compare
    try:
        old = json.loads(Path(old_path).read_text())
        new = json.loads(Path(new_path).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read timing JSON: {exc}", file=sys.stderr)
        return 2
    old_entries = old.get("entries", {})
    new_entries = new.get("entries", {})
    shared = sorted(set(old_entries) & set(new_entries))
    if not shared:
        print("no common entries between the two files", file=sys.stderr)
        return 2
    regressions = []
    print(f"{'entry':32} {'old wall_s':>12} {'new wall_s':>12} {'delta':>8}")
    for name in shared:
        old_wall = old_entries[name].get("wall_s")
        new_wall = new_entries[name].get("wall_s")
        if not isinstance(old_wall, (int, float)) or \
                not isinstance(new_wall, (int, float)):
            print(f"{name:32} {'-':>12} {'-':>12} {'n/a':>8}")
            continue
        ratio = (new_wall / old_wall) if old_wall > 0 else float("inf")
        print(f"{name:32} {old_wall:12.4f} {new_wall:12.4f} {ratio:7.2f}x")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    only_old = sorted(set(old_entries) - set(new_entries))
    only_new = sorted(set(new_entries) - set(old_entries))
    if only_old:
        print(f"only in {old_path}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {new_path}: {', '.join(only_new)}")
    for name, ratio in regressions:
        # Warn-only: wall clock on shared CI runners is noisy, so a
        # slowdown past the gate flags the entry without failing the
        # job (use --strict to turn warnings into a non-zero exit).
        print(f"::warning::{name} slowed {ratio:.2f}x "
              f"(> {args.threshold:.1f}x gate)")
    # Digest disagreement across jobs widths inside either file is a
    # determinism failure, so it fails hard regardless of --strict.
    broken = [f"{path}:{name}"
              for path, entries in ((old_path, old_entries),
                                    (new_path, new_entries))
              for name in _digest_mismatches(entries)]
    for item in broken:
        print(f"::error::{item} digests disagree across jobs widths")
    if broken:
        return 1
    if regressions and args.strict:
        return 1
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    from repro.bench.space import analyze_all, render

    print(render(analyze_all()))
    return 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.taxonomy import render_detection_table, render_recovery_table

    print(render_detection_table())
    print()
    print(render_recovery_table())
    return 0


def _cmd_fsck_demo(args: argparse.Namespace) -> int:
    from repro.disk import DeviceStack
    from repro.fs.ext3 import Ext3, Ext3Config, fsck_ext3, mkfs_ext3
    from repro.fs.ext3.structures import inode_slot, patch_inode_block

    cfg = Ext3Config()
    disk = DeviceStack.build(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)
    fs = Ext3(disk)
    fs.mount()
    fs.mkdir("/docs")
    fs.write_file("/docs/report", b"quarterly numbers " * 50)
    fs.write_file("/notes", b"remember the milk")
    fs.unmount()

    # Classic damage: a wild pointer and a wrecked bitmap.
    ino = 4  # one of the allocated inodes
    block, off = cfg.inode_location(ino)
    raw = disk.peek(block)
    inode = inode_slot(raw, off)
    if inode.direct[0]:
        inode.direct[0] = 0x7FFFFFF0
        disk.poke(block, patch_inode_block(raw, off, inode))
    disk.poke(cfg.block_bitmap_block(1), b"\xff" * cfg.block_size)

    print("== first pass (check only) ==")
    print(fsck_ext3(disk).render())
    print()
    print("== second pass (repair) ==")
    print(fsck_ext3(disk, repair=True).render())
    print()
    print("== third pass (verify) ==")
    print(fsck_ext3(disk).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IRON File Systems (SOSP 2005) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fingerprint", help="fingerprint a file system's failure policy")
    p.add_argument("fs", help="ext3 | reiserfs | jfs | ntfs | ixt3")
    p.add_argument("--workloads", help="subset of workload letters, e.g. 'adgp'")
    p.add_argument("--field-corruption", action="store_true",
                   help="use FS-aware corrupted-field blocks instead of noise")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="fan workloads out across N worker processes "
                        "(output is byte-identical to --jobs 1)")
    p.add_argument("--no-bench-json", action="store_true",
                   help="skip writing timing records to BENCH_fingerprint.json")
    p.add_argument("--trace", action="store_true",
                   help="record spans and write a Chrome trace-event JSON")
    p.add_argument("--trace-out", metavar="PATH",
                   help="trace output path (default: trace_fingerprint_FS.json)")
    p.add_argument("--metrics", action="store_true",
                   help="collect metrics; write JSON snapshot + Prometheus text")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="metrics output path (default: metrics_fingerprint_FS.json)")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_fingerprint)

    p = sub.add_parser("crash", help="explore bounded crash states of a workload")
    p.add_argument("fs", nargs="?", default="ext3",
                   help="ext3 | reiserfs | jfs | ntfs | ixt3 (ixt3 = Tc enabled)")
    p.add_argument("--workload", default="creat",
                   help="crash workload key (see --list)")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="fan crash states out across N worker processes "
                        "(reports are identical to --jobs 1)")
    p.add_argument("--max-torn", type=int, default=None, metavar="K",
                   help="cap torn states per commit epoch (default: all)")
    p.add_argument("--list", action="store_true",
                   help="list crash workloads and exit")
    p.add_argument("--fail-on-violation", action="store_true",
                   help="exit non-zero when any oracle is violated")
    p.add_argument("--no-bench-json", action="store_true",
                   help="skip writing timing records to BENCH_crash.json")
    p.add_argument("--trace", action="store_true",
                   help="keep every state's recovery stream and write a "
                        "Chrome trace-event JSON")
    p.add_argument("--trace-out", metavar="PATH",
                   help="trace output path (default: trace_crash_FS_W.json)")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_crash)

    p = sub.add_parser("trace",
                       help="trace a workload; write Chrome/Perfetto JSON")
    p.add_argument("fs", nargs="?", default="ext3",
                   help="ext3 | reiserfs | jfs | ntfs | ixt3")
    p.add_argument("--workload", action="append", metavar="W",
                   help="crash workload key, repeatable (default: all)")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="fan workloads out across N worker processes "
                        "(the merged trace is byte-identical to --jobs 1)")
    p.add_argument("-o", "--output", metavar="PATH",
                   help="trace output path (default: trace_FS_WORKLOADS.json)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="metrics output path (default: metrics_FS_WORKLOADS.json)")
    p.add_argument("--no-metrics", action="store_true",
                   help="skip the metrics snapshot")
    p.add_argument("--list", action="store_true",
                   help="list traceable workloads and exit")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("table6", help="run the Table-6 overhead sweep")
    p.add_argument("--quick", action="store_true",
                   help="baseline + single features + all-on only")
    p.add_argument("--benches", help="comma list: SSH,Web,Post,TPCB")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_table6)

    p = sub.add_parser("array",
                       help="fingerprint the redundancy arrays' failure policy")
    p.add_argument("--geometry", action="append", metavar="LABEL",
                   help="geometry label, repeatable: mirror2 | mirror3 | "
                        "parity4 | rdp5 (default: all)")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="fan (geometry, scenario) cells across N worker "
                        "processes (output is byte-identical to --jobs 1)")
    p.add_argument("--no-bench-json", action="store_true",
                   help="skip writing timing records to BENCH_array.json")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_array)

    def add_fleet_spec_flags(p):
        p.add_argument("--spec", metavar="JSON",
                       help="FleetSpec JSON file (missing keys take defaults)")
        p.add_argument("--trials", type=int, metavar="N",
                       help="trials per (geometry, policy) cell")
        p.add_argument("--seed", type=int, metavar="S",
                       help="root seed for the campaign's named streams")
        p.add_argument("--mission-hours", type=float, metavar="H",
                       help="virtual mission length per trial")
        p.add_argument("--geometry", action="append", metavar="LABEL",
                       help="geometry label, repeatable (default: all in spec)")
        p.add_argument("--policy", action="append", metavar="NAME",
                       help="policy name, repeatable (default: all in spec)")
        p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="fan trials across N worker processes (digests "
                            "are byte-identical to --jobs 1)")
        p.add_argument("--no-crosscheck", action="store_true",
                       help="skip the mirror2 analytic cross-check cell")
        p.add_argument("-v", "--verbose", action="store_true")

    p = sub.add_parser("fleet",
                       help="Monte Carlo fleet reliability campaign "
                            "(loss-probability matrix)")
    add_fleet_spec_flags(p)
    p.add_argument("--metrics-out", metavar="PATH",
                   help="also write the campaign's repro_fleet_* metrics "
                        "snapshot JSON here")
    p.add_argument("--no-bench-json", action="store_true",
                   help="skip writing timing records to BENCH_fleet.json")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("report",
                       help="aggregate a fleet campaign into a "
                            "schema-validated campaign_report.json "
                            "(incidents + time series)")
    add_fleet_spec_flags(p)
    p.add_argument("-o", "--out", metavar="PATH",
                   default="campaign_report.json",
                   help="campaign report output path "
                        "(default: campaign_report.json)")
    p.add_argument("--profile", action="store_true",
                   help="attach the wall-time self-time profiler and "
                        "include the attribution table (digests unchanged)")
    p.add_argument("--trace-trial", metavar="GEOMETRY/POLICY:N",
                   help="skip the campaign; re-run one pure trial with "
                        "span tracing and export its Perfetto timeline")
    p.add_argument("--trace-out", metavar="PATH",
                   help="timeline output path for --trace-trial "
                        "(default: trace_fleet_GEO_POL_N.json)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("bench", help="compare BENCH timing JSON files")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                   help="two repro-bench-timing/1 JSONs to diff by entry")
    p.add_argument("--threshold", type=float, default=2.0, metavar="X",
                   help="flag entries whose wall_s grew more than X-fold "
                        "(default: 2.0; warnings only)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero when any entry trips the threshold")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("space", help="print the space-overhead analysis")
    p.set_defaults(func=_cmd_space)

    p = sub.add_parser("taxonomy", help="print the IRON taxonomies")
    p.set_defaults(func=_cmd_taxonomy)

    p = sub.add_parser("fsck-demo", help="demonstrate R_repair on a damaged volume")
    p.set_defaults(func=_cmd_fsck_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
