"""Monte Carlo campaigns: trials fanned across the persistent pool.

A campaign is the cross product ``spec.cells() × range(spec.trials)``
run through :func:`repro.fleet.sim.run_trial`.  Trials are pure
functions of ``(spec, cell, trial)`` with per-trial named seed streams,
and :func:`repro.common.pool.pool_map` preserves submission order, so
the aggregate — per-cell loss probabilities, the typed
:class:`~repro.obs.events.FleetTrialEvent` stream, and the fold digest
over it — is byte-identical at any ``--jobs`` width.

The digest folds, in enumeration order, each trial's own event-stream
digest *and* its outcome key: a single flipped recovery anywhere in any
trial's machinery changes the campaign digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.pool import pool_map
from repro.disk.disk import DiskStats
from repro.fleet.analytic import crosscheck_summary
from repro.fleet.sim import TrialOutcome, run_trial
from repro.fleet.spec import (
    CROSSCHECK_GEOMETRY,
    CROSSCHECK_POLICY,
    FleetSpec,
    GeometrySpec,
    PolicySpec,
)
from repro.obs.events import EventLog, FleetTrialEvent, StorageEvent, fold_digest
from repro.obs.metrics import TTDL_BUCKETS, MetricsRegistry
from repro.obs.postmortem import (
    Incident,
    build_incident,
    fold_incidents,
    mode_counts,
    stream_label,
)
from repro.obs.trace import merge_profiles

OUTCOMES = ("survived", "detected-loss", "silent-loss", "stopped")


@dataclass
class CellResult:
    """Aggregate of one (geometry, policy) cell's trials."""

    geometry: str
    policy: str
    trials: int = 0
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in OUTCOMES})
    device_hours: float = 0.0
    ttdl_hours: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    io: DiskStats = field(default_factory=DiskStats)
    #: Loss-mode histogram from the cell's classified incidents.
    incident_modes: Dict[str, int] = field(default_factory=dict)

    def add(self, outcome: TrialOutcome) -> None:
        self.trials += 1
        self.outcomes[outcome.outcome] = \
            self.outcomes.get(outcome.outcome, 0) + 1
        self.device_hours += outcome.device_hours
        if outcome.ttdl_hours is not None:
            self.ttdl_hours.append(outcome.ttdl_hours)
        for name, value in outcome.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.io.merge(outcome.io)

    @property
    def losses(self) -> int:
        return self.outcomes["detected-loss"] + self.outcomes["silent-loss"]

    @property
    def loss_probability(self) -> float:
        return self.losses / self.trials if self.trials else 0.0

    @property
    def stop_probability(self) -> float:
        return self.outcomes["stopped"] / self.trials if self.trials else 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "outcomes": dict(sorted(self.outcomes.items())),
            "losses": self.losses,
            "loss_probability": round(self.loss_probability, 6),
            "stop_probability": round(self.stop_probability, 6),
            "device_hours": round(self.device_hours, 3),
            "mean_ttdl_hours": (
                round(sum(self.ttdl_hours) / len(self.ttdl_hours), 3)
                if self.ttdl_hours else None),
            "incident_modes": dict(sorted(self.incident_modes.items())),
        }


@dataclass
class FleetReport:
    """Everything one campaign produced."""

    spec: FleetSpec
    jobs: int = 1
    cells: "Dict[Tuple[str, str], CellResult]" = field(default_factory=dict)
    events: EventLog = field(default_factory=EventLog)
    #: Fold over (trial event digest, outcome key) in enumeration
    #: order — THE determinism witness compared across --jobs widths.
    digest: str = ""
    crosscheck: Optional[Dict[str, Any]] = None
    #: One classified post-mortem per lost/stopped trial, in
    #: enumeration order.
    incidents: List[Incident] = field(default_factory=list)
    #: Fold over incident keys in enumeration order — byte-identical
    #: at any --jobs width, asserted alongside :attr:`digest`.
    incident_digest: str = ""
    #: Retained logical event streams by label (terminal trials only);
    #: every incident cause ref resolves against this mapping.
    streams: Dict[str, Tuple[StorageEvent, ...]] = field(default_factory=dict)
    #: Flight-recorder time series folded across all trials (a
    #: registry holding only timeseries instruments).
    series: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Merged wall-time self-time attribution (``profile=True`` runs).
    profile: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def trials(self) -> int:
        return sum(cell.trials for cell in self.cells.values())

    @property
    def device_hours(self) -> float:
        return sum(cell.device_hours for cell in self.cells.values())

    def cell(self, geometry: str, policy: str) -> CellResult:
        return self.cells[(geometry, policy)]

    def matrix(self) -> Dict[str, Dict[str, float]]:
        """geometry → policy → loss probability (the headline)."""
        out: Dict[str, Dict[str, float]] = {}
        for (geometry, policy), cell in self.cells.items():
            out.setdefault(geometry, {})[policy] = round(
                cell.loss_probability, 6)
        return out

    def metrics(self) -> MetricsRegistry:
        """The campaign as ``repro_fleet_*`` series (schema-valid,
        associatively mergeable like every other registry)."""
        registry = MetricsRegistry()
        counter_series = {
            "failstops": "repro_fleet_failstops_total",
            "lse": "repro_fleet_lse_total",
            "corruptions": "repro_fleet_corruptions_total",
            "rebuild_windows": "repro_fleet_rebuild_windows_total",
            "scrub_units": "repro_fleet_scrub_units_total",
            "scrub_repairs": "repro_fleet_scrub_repairs_total",
            "retry_recoveries": "repro_fleet_retry_recoveries_total",
        }
        for (geometry, policy), cell in self.cells.items():
            labels = {"geometry": geometry, "policy": policy}
            for outcome, count in sorted(cell.outcomes.items()):
                if count:
                    registry.counter("repro_fleet_trials_total",
                                     outcome=outcome, **labels).inc(count)
            registry.counter("repro_fleet_device_hours_total",
                             **labels).inc(cell.device_hours)
            for key, name in counter_series.items():
                value = cell.counters.get(key, 0)
                if value:
                    registry.counter(name, **labels).inc(value)
            registry.counter("repro_fleet_member_reads_total",
                             **labels).inc(cell.io.reads)
            registry.counter("repro_fleet_member_writes_total",
                             **labels).inc(cell.io.writes)
            registry.gauge("repro_fleet_loss_probability",
                           **labels).set(cell.loss_probability)
            histogram = registry.histogram(
                "repro_fleet_ttdl_hours", bounds=TTDL_BUCKETS, **labels)
            for ttdl in cell.ttdl_hours:
                histogram.observe(ttdl)
            for mode, count in sorted(cell.incident_modes.items()):
                registry.counter("repro_fleet_incidents_total",
                                 mode=mode, **labels).inc(count)
        registry.merge(self.series)
        return registry

    def render(self) -> str:
        """The loss-probability matrix as a fixed-width table."""
        policies = []
        for (_g, policy) in self.cells:
            if policy not in policies:
                policies.append(policy)
        geometries = []
        for (geometry, _p) in self.cells:
            if geometry not in geometries:
                geometries.append(geometry)
        width = max(12, *(len(p) + 2 for p in policies))
        lines = [
            f"fleet: {self.trials} trials, "
            f"{self.device_hours:,.0f} device-hours, "
            f"mission {self.spec.mission_hours:,.0f}h, "
            f"acceleration {self.spec.rates.acceleration:g}x",
            "",
            "P(data loss) per geometry x policy:",
            "  " + "geometry".ljust(10) + "".join(
                p.rjust(width) for p in policies),
        ]
        for geometry in geometries:
            row = "  " + geometry.ljust(10)
            for policy in policies:
                cell = self.cells.get((geometry, policy))
                if cell is None:
                    row += "-".rjust(width)
                else:
                    text = f"{cell.loss_probability:.3f}"
                    if cell.outcomes["stopped"]:
                        text += f"({cell.stop_probability:.2f}s)"
                    row += text.rjust(width)
            lines.append(row)
        if any(cell.outcomes["stopped"] for cell in self.cells.values()):
            lines.append("  (Ns) = fraction of trials frozen by R_stop "
                         "before any loss")
        if self.crosscheck is not None:
            cc = self.crosscheck
            verdict = "OK" if cc["within_tolerance"] else "FAIL"
            lines += [
                "",
                "mirror2 analytic cross-check: "
                f"simulated {cc['simulated_loss_probability']:.4f} vs "
                f"closed-form {cc['analytic_loss_probability']:.4f} "
                f"(tolerance {cc['tolerance']:.4f}) [{verdict}]",
            ]
        lines.append("")
        lines.append(f"outcome digest: {self.digest}")
        lines.append(f"incident digest: {self.incident_digest}")
        return "\n".join(lines)

    def incident_summary(self) -> List[str]:
        """One line per cell with terminal trials: the dominant loss
        mode and its count (the ``repro fleet`` exit summary)."""
        lines = []
        for (geometry, policy), cell in self.cells.items():
            if not cell.incident_modes:
                continue
            top_mode, top_count = max(
                cell.incident_modes.items(), key=lambda kv: (kv[1], kv[0]))
            total = sum(cell.incident_modes.values())
            lines.append(
                f"{geometry}/{policy}: {total} incidents, "
                f"top {top_mode} x{top_count}")
        return lines

    def campaign_report(self) -> Dict[str, Any]:
        """The schema-validated campaign report body
        (``repro-campaign-report/1``): the matrix, every classified
        incident with provenance refs, the merged flight-recorder
        series, and the determinism digests."""
        report: Dict[str, Any] = {
            "schema": "repro-campaign-report/1",
            "seed": self.spec.seed,
            "jobs": self.jobs,
            "trials": self.trials,
            "trials_per_cell": self.spec.trials,
            "mission_hours": self.spec.mission_hours,
            "device_hours": round(self.device_hours, 3),
            "acceleration": self.spec.rates.acceleration,
            "matrix": self.matrix(),
            "cells": {
                f"{geometry}/{policy}": cell.to_record()
                for (geometry, policy), cell in self.cells.items()
            },
            "incidents": [
                incident.to_record() for incident in self.incidents],
            "incident_digest": self.incident_digest,
            "outcome_digest": self.digest,
            "timeseries": self.series.snapshot()["timeseries"],
        }
        if self.crosscheck is not None:
            report["crosscheck"] = self.crosscheck
        if self.profile is not None:
            report["profile"] = self.profile
        return report

    def to_record(self) -> Dict[str, Any]:
        """The BENCH_fleet.json entry body (wall time added by caller)."""
        record: Dict[str, Any] = {
            "trials_per_cell": self.spec.trials,
            "trials": self.trials,
            "cells": len(self.cells),
            "device_hours": round(self.device_hours, 3),
            "mission_hours": self.spec.mission_hours,
            "seed": self.spec.seed,
            "acceleration": self.spec.rates.acceleration,
            "matrix": self.matrix(),
            "incidents": len(self.incidents),
            "incident_modes": mode_counts(self.incidents),
            "cell_detail": {
                f"{geometry}/{policy}": cell.to_record()
                for (geometry, policy), cell in self.cells.items()
            },
        }
        if self.crosscheck is not None:
            record["crosscheck"] = self.crosscheck
        return record


def _trial_worker(spec: FleetSpec, cell_index: int, trial: int,
                  profile: bool = False) -> TrialOutcome:
    geometry, policy = spec.cells()[cell_index]
    return run_trial(spec, geometry, policy, trial, profile=profile)


def _crosscheck_repair_hours(spec: FleetSpec, geometry: GeometrySpec,
                             policy: PolicySpec) -> float:
    """The repair window the closed form integrates: replacement delay
    plus the rebuild of one full member (mirror members hold every
    logical block)."""
    return (policy.replace_delay_hours
            + policy.rebuild_hours(spec.num_blocks))


def run_fleet(spec: FleetSpec, jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              profile: bool = False) -> FleetReport:
    """Run the campaign; byte-identical results at any *jobs* width.

    ``profile=True`` attaches a wall-time self-time profiler to every
    trial and merges the per-trial tables into
    :attr:`FleetReport.profile` — digests are unchanged (profiling is
    a side table, never an event).
    """
    cells = spec.cells()
    tasks = [(spec, cell_index, trial, profile)
             for cell_index in range(len(cells))
             for trial in range(spec.trials)]
    report = FleetReport(spec=spec, jobs=jobs)
    members = {}
    for geometry, policy in cells:
        report.cells[(geometry.label, policy.name)] = CellResult(
            geometry=geometry.label, policy=policy.name)
        members[geometry.label] = geometry.members

    chunksize = max(1, min(16, spec.trials // 8 or 1))
    hasher = hashlib.sha256()
    profiles: List[Dict[str, Dict[str, float]]] = []
    done = 0
    for outcome in pool_map(_trial_worker, tasks, jobs, chunksize=chunksize):
        cell = report.cells[(outcome.geometry, outcome.policy)]
        cell.add(outcome)
        event = FleetTrialEvent(
            geometry=outcome.geometry,
            policy=outcome.policy,
            trial=outcome.trial,
            outcome=outcome.outcome,
            ttdl_hours=outcome.ttdl_hours,
            device_hours=outcome.device_hours,
        )
        report.events.emit(event)
        hasher.update(outcome.digest.encode("ascii"))
        fold_digest(hasher, f"{outcome.geometry}:{outcome.policy}", [event])
        # Flight-recorder series fold bin-wise (associative), and
        # pool_map delivers outcomes in submission order, so the merged
        # series — like the digests — never depends on --jobs.
        for entry in outcome.series:
            report.series.timeseries_from_entry(entry)
        if outcome.outcome != "survived":
            incident = build_incident(
                outcome, members[outcome.geometry])
            report.incidents.append(incident)
            cell.incident_modes[incident.mode] = \
                cell.incident_modes.get(incident.mode, 0) + 1
            if outcome.stream is not None:
                report.streams[stream_label(outcome)] = outcome.stream
        if outcome.profile:
            profiles.append(outcome.profile)
        done += 1
        if progress is not None and done % max(1, spec.trials // 2) == 0:
            progress(f"fleet: {done}/{len(tasks)} trials "
                     f"({outcome.geometry}/{outcome.policy})")
    report.digest = hasher.hexdigest()
    report.incident_digest = fold_incidents(report.incidents)
    if profile:
        report.profile = merge_profiles(profiles)

    if spec.crosscheck:
        cell = report.cells[(CROSSCHECK_GEOMETRY.label,
                             CROSSCHECK_POLICY.name)]
        rates = spec.rates_for(CROSSCHECK_POLICY)
        report.crosscheck = crosscheck_summary(
            observed_losses=cell.losses,
            trials=cell.trials,
            failstop_per_hour=rates.failstop_per_hour,
            repair_hours=_crosscheck_repair_hours(
                spec, CROSSCHECK_GEOMETRY, CROSSCHECK_POLICY),
            mission_hours=spec.mission_hours,
        )
    return report


__all__ = ["CellResult", "FleetReport", "OUTCOMES", "run_fleet"]
