"""One fleet trial: a device's mission simulated as discrete events.

A trial instantiates one array-backed
:class:`~repro.disk.stack.DeviceStack` (or a bare single-disk stack for
the R_zero baseline), advances a virtual **fleet clock** in hours, and
samples three arrival processes per member disk from named seeded
streams (:mod:`repro.common.rng`):

* **fail-stop** — the whole member dies (``fail_whole_disk``); a spare
  is seated after the policy's replacement delay and reconstructed by
  the *real* ``rebuild_member`` path, so anything else wrong in the
  array during the window defeats reconstruction exactly the way it
  would in the array code, not in closed-form math.
* **latent sector error** — a sticky (or, with the measured soft-error
  probability, transient) READ fault armed on the member's own
  ``FaultInjector``; nothing notices until a scrub, a degraded read, a
  rebuild, or the mission-end verify touches the block.
* **silent corruption** — seeded noise poked directly into the member
  disk below the injector: no error code, only D_redundancy (scrub
  comparison) or the mission-end verify can see it.

Scrubbing is driven by the fleet clock through
:class:`IntervalScrubScheduler`, which steps the incremental cursor
PR 6 left dormant (``ArrayDevice.scrub_step``).  Scrub pauses while the
array is degraded — scanning around a failed or half-rebuilt member
would misread expected redundancy gaps as damage — and, when the spec
allows, skips scans while nothing has been armed or corrupted since the
last clean pass (outcome-identical: scrubbing an untouched array
repairs nothing).

A trial ends at the first established data loss (``detected-loss``), at
an R_stop freeze (``stopped``), or at mission end, where a full verify
read of every logical block against the expected fill pattern catches
what no mechanism ever flagged (``silent-loss``).  Everything —
arrivals, placements, noise bytes, tie-breaks — derives from the
trial's own seed, so a trial's outcome is a pure function of
``(spec, geometry, policy, trial_index)`` and campaigns can fan trials
across processes in any order.

Scoring notes (documented, deliberate):

* ``ttdl_hours`` is the fleet clock when loss was *established* by the
  machinery (a rebuild or scrub that came up short, a failed read, the
  mission-end verify) — silent corruption is, by definition, only
  established late.
* For the ``single`` geometry an unrecovered read error returned to
  the "application" scores as loss even when the underlying fault was
  transient: an R_zero stack has no retry and no redundancy, so the
  error is what the user sees.  Giving the policy ``retries`` makes
  exactly those trials survive — R_retry measured, not asserted.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common import Severity
from repro.common import rng as rng_mod
from repro.common.errors import ReadError
from repro.disk.disk import DiskStats
from repro.disk.faults import Fault, FaultKind, FaultOp, Persistence
from repro.disk.stack import DeviceStack
from repro.obs.events import (
    ArrayRecoveryEvent,
    DetectionEvent,
    EventLog,
    FleetClockEvent,
    LogEvent,
    StorageEvent,
    fold_digest,
)
from repro.obs.timeseries import FlightRecorder
from repro.obs.trace import SelfTimeProfiler, enable_tracing
from repro.fleet.spec import FleetSpec, GeometrySpec, PolicySpec

#: Ring capacity of a trial's event log: big enough that a trial's
#: logical story (detections, recoveries, scrub/rebuild outcomes)
#: survives whole, bounded so ten thousand trials cannot hold the
#: campaign's memory hostage.
TRIAL_LOG_EVENTS = 8192

# Event kinds on the trial's virtual-time heap, in deterministic
# tie-break order (same-instant events resolve by kind then member).
_FAILSTOP = 0
_REPLACE = 1
_REBUILD = 2
_LSE = 3
_CORRUPT = 4
_TICK = 5

_ARRIVALS = (_FAILSTOP, _LSE, _CORRUPT)


class _RetryDevice:
    """R_retry at the member boundary: re-issue failed reads.

    Wraps a member's injector so *every* consumer of the member —
    degraded reads, scrub, rebuild reconstruction — gets the policy's
    retry depth, exactly where a retrying controller would sit.  A
    successful retry emits a typed ``recovery/retry`` event into the
    array's logical stream, so R_retry shows up in the same event
    vocabulary inference already classifies.
    """

    def __init__(self, inner, retries: int, log: EventLog, member: int):
        self._inner = inner
        self._retries = retries
        self._log = log
        self._member = member
        self.retry_recoveries = 0

    def read_block(self, block: int) -> bytes:
        try:
            return self._inner.read_block(block)
        except ReadError:
            for attempt in range(self._retries):
                try:
                    data = self._inner.read_block(block)
                except ReadError:
                    continue
                self.retry_recoveries += 1
                self._log.emit(ArrayRecoveryEvent(
                    Severity.INFO, "fleet", "read-retry",
                    f"member {self._member} block {block} recovered "
                    f"after {attempt + 1} retries",
                    block=block, mechanism="retry", member=self._member))
                return data
            raise

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class IntervalScrubScheduler:
    """Interval-based scrubbing driven by the fleet clock.

    PR 6 gave arrays an incremental scrub cursor but only an op-count
    trigger (``set_scrub_schedule``); fleets scrub on *time*, not I/O.
    This scheduler owns the due-time bookkeeping: every
    ``interval_hours`` of fleet time, :meth:`tick` advances the shared
    cursor by ``units_per_tick`` scrub units (0 = the whole remaining
    pass), so a pass makes partial progress across ticks and wraps —
    coverage accounting included.
    """

    def __init__(self, array, interval_hours: float,
                 units_per_tick: int = 0):
        if interval_hours < 0:
            raise ValueError("scrub interval must be >= 0 (0 disables)")
        self.array = array
        self.interval_hours = interval_hours
        self.units_per_tick = units_per_tick
        self.next_due: Optional[float] = (
            interval_hours if interval_hours > 0 else None)
        self.ticks = 0
        self.units_scanned = 0
        self.passes_completed = 0

    @property
    def enabled(self) -> bool:
        return self.next_due is not None

    def due(self, now: float) -> bool:
        return self.next_due is not None and now >= self.next_due - 1e-9

    def tick(self, now: float):
        """Run one scrub increment if the clock says it is due.

        Returns the :class:`~repro.redundancy.array.ArrayScrubReport`
        for the increment, or ``None`` when not yet due (or disabled).
        """
        if not self.due(now):
            return None
        self.next_due = self.next_due + self.interval_hours
        remaining = self.array.scrub_units - self.array.scrub_cursor
        units = self.units_per_tick or max(1, remaining)
        report = self.array.scrub_step(units)
        self.ticks += 1
        self.units_scanned += report.units_scanned
        if report.units_scanned and self.array.scrub_cursor == 0:
            self.passes_completed += 1
        return report


@dataclass(frozen=True)
class TrialOutcome:
    """The compact, picklable verdict one trial sends back to the pool."""

    geometry: str
    policy: str
    trial: int
    #: "survived" | "detected-loss" | "silent-loss" | "stopped"
    outcome: str
    ttdl_hours: Optional[float]
    end_hours: float
    device_hours: float
    counters: Dict[str, int] = field(default_factory=dict)
    io: DiskStats = field(default_factory=DiskStats)
    events: int = 0
    #: SHA-256 over the trial's typed event stream — the per-trial
    #: determinism witness the campaign folds into its digest.
    digest: str = ""
    #: Where the terminal verdict was established ("rebuild" /
    #: "scrub" / "foreground" / "detection" / "verify" / "failstop";
    #: "" for survivors) — the post-mortem classifier's anchor.
    site: str = ""
    #: Flight-recorder gauges projected onto mergeable fixed-bin
    #: series entries labelled with the trial's cell.
    series: Tuple[Dict[str, Any], ...] = ()
    #: The trial's logical event stream (``LogEvent`` subclasses only
    #: — block I/O stays behind), retained for lost/stopped trials so
    #: post-mortem provenance refs resolve; None for survivors.
    stream: Optional[Tuple[StorageEvent, ...]] = None
    #: Events the ring evicted before trial end (post-mortems report
    #: a truncated causal prefix honestly instead of silently).
    dropped_events: int = 0
    #: Wall-time self-time attribution table (``--profile`` runs only).
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Raw flight-recorder samples (``repro-timeseries/1``; traced
    #: re-runs only — feeds the exported timeline).
    flight: Optional[Dict[str, Any]] = None

    @property
    def lost(self) -> bool:
        return self.outcome in ("detected-loss", "silent-loss")


def _payload(block: int, trial: int, block_size: int) -> bytes:
    """The expected fill pattern — what the mission-end verify checks."""
    return bytes([(block * 37 + trial * 7 + 11) % 256]) * block_size


class _Trial:
    """State machine for one device's mission."""

    def __init__(self, spec: FleetSpec, geometry: GeometrySpec,
                 policy: PolicySpec, trial: int,
                 trace: bool = False, profile: bool = False):
        self.spec = spec
        self.geometry = geometry
        self.policy = policy
        self.trial = trial
        self.rates = spec.rates_for(policy)
        self.seed = rng_mod.derive_seed(
            spec.seed, "fleet", geometry.label, policy.name, trial)
        self.counters: Dict[str, int] = {}
        self.outcome = "survived"
        self.ttdl: Optional[float] = None
        self.end: Optional[float] = None
        self.dirty_since_scrub = False
        self.site = ""

        # Flight recorder: gauges over the virtual clock.  Sampling
        # reads state and draws no randomness, so instrumented trials
        # keep the exact arrival sequences of uninstrumented ones.
        self._recorder = FlightRecorder()
        #: Members currently failed or awaiting rebuild.
        self._degraded: set = set()
        #: Silently corrupted (member, block) pairs not yet repaired.
        self._corrupt: set = set()
        #: Open rebuild windows: member -> (opened_at, expected_close).
        self._windows: Dict[int, Tuple[float, float]] = {}
        self._trace = trace
        self._profiler = SelfTimeProfiler() if profile else None
        self._window_spans: Dict[int, int] = {}

        self.events = EventLog(max_events=TRIAL_LOG_EVENTS)
        if geometry.kind == "single":
            self.stack = DeviceStack.build(
                spec.num_blocks, spec.block_size,
                inject=True, events=self.events)
            self.array = None
            self.n_members = 1
            self.single_cursor = 0
            self.scheduler: Optional[IntervalScrubScheduler] = None
        else:
            self.stack = DeviceStack.build(
                spec.num_blocks, spec.block_size, events=self.events,
                array=geometry.kind, members=geometry.members)
            self.array = self.stack.disk
            self.n_members = len(self.array.members)
            if policy.retries > 0:
                for member in self.array.members:
                    member.device = _RetryDevice(
                        member.injector, policy.retries,
                        self.events, member.index)
            self.scheduler = IntervalScrubScheduler(
                self.array, policy.scrub_interval_hours,
                policy.scrub_units_per_tick)

        for block in range(spec.num_blocks):
            self.stack.write_block(
                block, _payload(block, trial, spec.block_size))
        self.stack.flush()
        self.events.clear()
        # Tracing starts after the (uninteresting) initial fill; a
        # traced trial reaches the same verdict — spans draw no
        # randomness — but its event stream gains the span vocabulary.
        self._tracer = enable_tracing(self.events) if trace else None

        # Named child streams: one per (process, member) plus shared
        # placement / noise / foreground-IO streams.  Derivation is
        # order-independent, so adding a stream never shifts another.
        self._streams = {
            (proc, m): rng_mod.stream(self.seed, proc, m)
            for proc in ("failstop", "lse", "corrupt")
            for m in range(self.n_members)
        }
        self._placement = rng_mod.stream(self.seed, "placement")
        self._noise = rng_mod.stream(self.seed, "noise")
        self._io = rng_mod.stream(self.seed, "io")

        self._heap: List[Tuple[float, int, int, int, int]] = []
        self._seq = 0
        self._epochs = [0] * self.n_members
        #: Sticky latent faults currently armed, by (member, block) —
        #: so repairs can *heal* them: a drive that rewrites a latent
        #: sector remaps it (Gray & van Ingen's reallocated sectors),
        #: so a scrub repair-write or a fresh spare clears the fault.
        #: Without this, latent errors accumulate for the whole mission
        #: and tiny simulated arrays saturate on same-stripe collisions.
        self._armed: Dict[Tuple[int, int], List[Fault]] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def _push(self, t: float, kind: int, member: int = -1) -> None:
        self._seq += 1
        epoch = self._epochs[member] if member >= 0 else 0
        heapq.heappush(self._heap, (t, kind, member, self._seq, epoch))

    def _schedule_arrival(self, now: float, kind: int, member: int) -> None:
        rate = {
            _FAILSTOP: self.rates.failstop_per_hour,
            _LSE: self.rates.lse_per_hour,
            _CORRUPT: self.rates.corruption_per_hour,
        }[kind]
        if rate <= 0:
            return
        proc = {_FAILSTOP: "failstop", _LSE: "lse", _CORRUPT: "corrupt"}[kind]
        gap = self._streams[(proc, member)].expovariate(rate)
        self._push(now + gap, kind, member)

    def _schedule_member(self, now: float, member: int) -> None:
        for kind in _ARRIVALS:
            self._schedule_arrival(now, kind, member)

    def _clock(self, t: float, tag: str, message: str,
               member: Optional[int] = None,
               block: Optional[int] = None) -> None:
        """Stamp a lifecycle observation with the fleet clock."""
        self.events.emit(FleetClockEvent(
            Severity.INFO, "fleet", tag, message,
            block=block, t_hours=round(t, 6), member=member))

    def _sample(self, t: float) -> None:
        """Offer every flight-recorder gauge one sample at clock *t*."""
        rec = self._recorder
        rec.sample("repro_fleet_degraded_members", t, len(self._degraded))
        rec.sample("repro_fleet_latent_blocks", t, len(self._armed))
        rec.sample("repro_fleet_corrupt_blocks", t, len(self._corrupt))
        progress = 0.0
        for opened, closes in self._windows.values():
            span = closes - opened
            if span > 0:
                progress = max(progress, min(1.0, (t - opened) / span))
        rec.sample("repro_fleet_rebuild_progress", t, progress)
        if self.array is not None:
            cursor = self.array.scrub_cursor / max(1, self.array.scrub_units)
        else:
            cursor = self.single_cursor / max(1, self.spec.num_blocks)
        rec.sample("repro_fleet_scrub_cursor", t, cursor)
        rec.sample("repro_fleet_foreground_reads", t,
                   self.counters.get("foreground_reads", 0))
        rec.sample("repro_fleet_scrub_member_reads", t,
                   self.counters.get("scrub_units", 0))

    def _lose(self, t: float, silent: bool = False, site: str = "") -> None:
        self.outcome = "silent-loss" if silent else "detected-loss"
        self.ttdl = round(t, 6)
        self.end = t
        self.site = site
        self._clock(t, "loss-established",
                    f"{self.outcome} established at {site or 'unknown'}")

    def _stop(self, t: float, site: str = "") -> None:
        self.outcome = "stopped"
        self.end = t
        self.site = site
        self._clock(t, "rstop-freeze",
                    f"R_stop froze the array at {site or 'unknown'}")

    @property
    def _done(self) -> bool:
        return self.end is not None

    def _member_disk(self, member: int):
        if self.array is None:
            return self.stack.disk
        return self.array.members[member].disk

    def _member_injector(self, member: int):
        return (self.stack.injector if self.array is None
                else self.array.members[member].injector)

    def _heal(self, member: int, block: int) -> None:
        """A repair rewrote this member block: the drive remapped the
        latent sector, so its sticky READ fault disarms."""
        for fault in self._armed.pop((member, block), ()):
            injector = self._member_injector(member)
            if fault in injector.faults:
                injector.disarm(fault)

    def _detections_since(self) -> bool:
        """Did the machinery emit a DetectionEvent since last checked?
        (The R_stop trigger for faults the array *noticed*.)"""
        return any(isinstance(e, DetectionEvent)
                   for e in self.events.consume_new())

    def _read_logical(self, block: int) -> bytes:
        """A foreground/verify read with the policy's R_retry depth
        applied at the stack boundary (the array's members already
        retry below via :class:`_RetryDevice`)."""
        try:
            return self.stack.read_block(block)
        except ReadError:
            if self.array is None:
                for _ in range(self.policy.retries):
                    try:
                        data = self.stack.read_block(block)
                    except ReadError:
                        continue
                    self._count("retry_recoveries")
                    return data
            raise

    # -- event handlers ----------------------------------------------------------

    def _on_failstop(self, t: float, member: int) -> None:
        self._count("failstops")
        self._clock(t, "failstop-arrival",
                    f"member {member} fail-stopped", member=member)
        if self.policy.stop_on_fault:
            # Whole-disk failure is detected at once (the device's
            # error code / heartbeat): R_stop freezes here.
            self._stop(t, site="failstop")
            return
        if self.array is None:
            # R_zero: no spare pool, no redundancy — the data is gone.
            self._lose(t, site="failstop")
            return
        self.array.fail_member(member)
        self._degraded.add(member)
        expected = t + self.policy.replace_delay_hours \
            + self.policy.rebuild_hours(self._member_disk(member).num_blocks)
        self._windows[member] = (t, expected)
        if self._trace:
            self._window_spans[member] = self._tracer.start(
                f"rebuild-window m{member}", "phase",
                detail=f"opened {round(t, 3)}h", source="fleet",
                floating=True)
        # The dead member's pending arrivals are void.
        self._epochs[member] += 1
        self._push(t + self.policy.replace_delay_hours, _REPLACE, member)

    def _on_replace(self, t: float, member: int) -> None:
        self.array.replace_member(member)
        # The spare is new hardware: the dead disk's media faults do
        # not carry over to it.
        self.array.members[member].injector.clear_faults()
        self._armed = {key: faults for key, faults in self._armed.items()
                       if key[0] != member}
        self._corrupt = {key for key in self._corrupt if key[0] != member}
        self.events.consume_new()
        self._count("rebuild_windows")
        self._clock(t, "spare-seated",
                    f"spare seated for member {member}", member=member)
        blocks = self._member_disk(member).num_blocks
        self._push(t + self.policy.rebuild_hours(blocks), _REBUILD, member)

    def _on_rebuild(self, t: float, member: int) -> None:
        if self._profiler is not None:
            self._profiler.enter("fleet:rebuild")
        rebuilt = self.array.rebuild_member(member)
        if self._profiler is not None:
            self._profiler.exit()
        self._count("rebuilt_blocks", rebuilt)
        self._count("rebuilds")
        fresh = self.events.consume_new()
        if any(getattr(e, "tag", "") == "rebuild-loss" for e in fresh):
            # Reconstruction came up short: compound failure inside the
            # window (the §3.3 scenario) — loss, established here.
            self._lose(t, site="rebuild")
            return
        self._degraded.discard(member)
        self._windows.pop(member, None)
        self._clock(t, "rebuild-complete",
                    f"member {member} reconstructed ({rebuilt} blocks)",
                    member=member)
        if self._trace:
            span = self._window_spans.pop(member, 0)
            self._tracer.end(span)
        # Member healthy again: its arrival processes resume.
        self._schedule_member(t, member)

    def _on_lse(self, t: float, member: int) -> None:
        self._count("lse")
        stream = self._streams[("lse", member)]
        transient = stream.random() < self.rates.transient_fraction
        if transient:
            self._count("lse_transient")
        disk = self._member_disk(member)
        block = self._placement.randrange(disk.num_blocks)
        self._clock(t, "lse-arrival",
                    f"latent {'transient' if transient else 'sticky'} "
                    f"error on member {member} block {block}",
                    member=member, block=block)
        fault = self._member_injector(member).arm(Fault(
            FaultOp.READ, FaultKind.FAIL, block=block,
            persistence=(Persistence.TRANSIENT if transient
                         else Persistence.STICKY),
            transient_count=1))
        if not transient:
            self._armed.setdefault((member, block), []).append(fault)
        self.dirty_since_scrub = True
        self._schedule_arrival(t, _LSE, member)

    def _on_corrupt(self, t: float, member: int) -> None:
        self._count("corruptions")
        disk = self._member_disk(member)
        block = self._placement.randrange(disk.num_blocks)
        self._clock(t, "corrupt-arrival",
                    f"silent corruption on member {member} block {block}",
                    member=member, block=block)
        noise = bytes(self._noise.randrange(256)
                      for _ in range(self.spec.block_size))
        # Below the injector, no error code: the definition of silent.
        disk.poke(block, noise)
        self._corrupt.add((member, block))
        self.dirty_since_scrub = True
        self._schedule_arrival(t, _CORRUPT, member)

    def _on_tick(self, t: float) -> None:
        nxt = t + self.policy.scrub_interval_hours
        if nxt <= self.spec.mission_hours + 1e-9:
            self._push(nxt, _TICK)
        span = self._tracer.start(
            f"tick@{round(t, 3)}h", "phase", source="fleet") \
            if self._trace else 0
        self._foreground_io(t)
        if not self._done:
            self._scrub_tick(t)
        if self._trace:
            self._tracer.end(span, status="ok" if not self._done
                             else self.outcome)

    def _foreground_io(self, t: float) -> None:
        if self._profiler is not None:
            self._profiler.enter("fleet:foreground-io")
        try:
            for _ in range(self.policy.io_reads_per_tick):
                block = self._io.randrange(self.spec.num_blocks)
                try:
                    self._read_logical(block)
                except ReadError:
                    # Every recovery level below already had its chance
                    # (member retries, reconstruction): the error
                    # reaching the application is loss — or the R_stop
                    # trigger.
                    self._count("foreground_errors")
                    if self.policy.stop_on_fault:
                        self._stop(t, site="foreground")
                    else:
                        self._lose(t, site="foreground")
                    return
                self._count("foreground_reads")
            if self.policy.stop_on_fault and self._detections_since():
                self._stop(t, site="detection")
        finally:
            if self._profiler is not None:
                self._profiler.exit()

    def _scrub_tick(self, t: float) -> None:
        if self.policy.scrub_interval_hours <= 0:
            return
        if self._profiler is not None:
            self._profiler.enter("fleet:scrub")
        try:
            self._scrub_tick_inner(t)
        finally:
            if self._profiler is not None:
                self._profiler.exit()

    def _scrub_tick_inner(self, t: float) -> None:
        if self.array is not None:
            if self.array.degraded:
                # Scrub pauses while failed/stale members would make
                # expected redundancy gaps look like damage (rebuild
                # has priority on a real array, too).
                self._count("scrubs_deferred")
                return
            if self.spec.skip_clean_scrubs and not self.dirty_since_scrub:
                self._count("scrubs_skipped")
                return
            report = self.scheduler.tick(t)
            if report is None:  # pragma: no cover - scheduler disabled
                return
            self._count("scrub_ticks")
            self._count("scrub_units", report.units_scanned)
            self._count("scrub_repairs", len(report.repaired))
            for member, block in report.repaired:
                self._heal(member, block)
                self._corrupt.discard((member, block))
            if report.unrepairable:
                if self.policy.stop_on_fault:
                    self._stop(t, site="scrub")
                else:
                    self._lose(t, site="scrub")
                return
            if self.policy.stop_on_fault and (
                    report.latent_errors or report.corruptions):
                self._stop(t, site="scrub")
                return
            self.events.consume_new()
            if self.array.scrub_cursor == 0 and report.units_scanned:
                self._count("scrub_passes")
                self.dirty_since_scrub = False
                self._clock(t, "scrub-pass", "scrub pass completed clean")
        else:
            self._single_scrub(t)

    def _single_scrub(self, t: float) -> None:
        """Media scan for the R_zero baseline: sequential reads with the
        policy's retry depth; an unreadable block has no second copy."""
        if self.spec.skip_clean_scrubs and not self.dirty_since_scrub:
            self._count("scrubs_skipped")
            return
        total = self.spec.num_blocks
        units = self.policy.scrub_units_per_tick or total - self.single_cursor
        end = min(self.single_cursor + units, total)
        self._count("scrub_ticks")
        for block in range(self.single_cursor, end):
            self._count("scrub_units")
            try:
                self._read_logical(block)
            except ReadError:
                self._count("scrub_errors")
                if self.policy.stop_on_fault:
                    self._stop(t, site="scrub")
                else:
                    self._lose(t, site="scrub")
                return
        if end >= total:
            self.single_cursor = 0
            self._count("scrub_passes")
            self.dirty_since_scrub = False
            self._clock(t, "scrub-pass", "media scan completed clean")
        else:
            self.single_cursor = end

    def _verify(self, t: float) -> None:
        """Mission-end audit: every logical block against the expected
        fill.  Detected loss if a read errors through all recovery
        levels; *silent* loss if wrong bytes come back without one."""
        self._clock(t, "verify-start", "mission-end verify sweep")
        span = self._tracer.start("verify", "phase", source="fleet") \
            if self._trace else 0
        if self._profiler is not None:
            self._profiler.enter("fleet:verify")
        try:
            for block in range(self.spec.num_blocks):
                expected = _payload(block, self.trial, self.spec.block_size)
                try:
                    data = self._read_logical(block)
                except ReadError:
                    self._lose(t, site="verify")
                    return
                if bytes(data) != expected:
                    self._lose(t, silent=True, site="verify")
                    return
        finally:
            if self._profiler is not None:
                self._profiler.exit()
            if self._trace:
                self._tracer.end(span, status=self.outcome
                                 if self._done else "ok")

    # -- main loop --------------------------------------------------------------

    def run(self) -> TrialOutcome:
        mission = self.spec.mission_hours
        root = self._tracer.start(
            f"mission {self.geometry.label}/{self.policy.name}"
            f"#{self.trial}", "run", source="fleet") if self._trace else 0
        for member in range(self.n_members):
            self._schedule_member(0.0, member)
        if self.policy.scrub_interval_hours > 0:
            self._push(self.policy.scrub_interval_hours, _TICK)
        self._sample(0.0)

        handlers = {
            _FAILSTOP: self._on_failstop,
            _REPLACE: self._on_replace,
            _REBUILD: self._on_rebuild,
            _LSE: self._on_lse,
            _CORRUPT: self._on_corrupt,
        }
        while self._heap and not self._done:
            t, kind, member, _seq, epoch = heapq.heappop(self._heap)
            if t > mission:
                break
            if kind in _ARRIVALS and member >= 0 \
                    and epoch != self._epochs[member]:
                continue  # arrival for a member that since fail-stopped
            if kind == _TICK:
                self._on_tick(t)
            else:
                if self._profiler is not None and kind in _ARRIVALS:
                    with self._profiler.section("fleet:arrivals"):
                        handlers[kind](t, member)
                else:
                    handlers[kind](t, member)
            self._sample(t)

        if not self._done:
            self._verify(mission)
        end = self.end if self.end is not None else mission
        self._sample(end)
        if self._trace:
            for span in self._window_spans.values():
                self._tracer.end(span, status="open-at-end")
            self._tracer.end(root, status=self.outcome)

        if self.array is not None:
            io = self.array.merged_member_stats()
            self._count("degraded_reads", self.array.degraded_reads)
            self._count("read_repairs", self.array.read_repairs)
            self._count("retry_recoveries", sum(
                getattr(m.device, "retry_recoveries", 0)
                for m in self.array.members))
        else:
            io = DiskStats().merge(self.stack.stats)

        label = f"fleet:{self.geometry.label}:{self.policy.name}:{self.trial}"
        hasher = hashlib.sha256()
        fold_digest(hasher, label, list(self.events))
        # Post-mortems only need the logical story: keep LogEvent
        # subclasses (arrivals, detections, recoveries, verdicts) and
        # leave the block-I/O firehose behind, so ten thousand trials'
        # worth of retained streams stays small.  Traced re-runs keep
        # everything — the timeline export wants spans and I/O too.
        if self._trace:
            stream: Optional[Tuple[StorageEvent, ...]] = tuple(self.events)
        elif self.outcome != "survived":
            stream = tuple(e for e in self.events
                           if isinstance(e, LogEvent))
        else:
            stream = None
        return TrialOutcome(
            geometry=self.geometry.label,
            policy=self.policy.name,
            trial=self.trial,
            outcome=self.outcome,
            ttdl_hours=self.ttdl,
            end_hours=round(end, 6),
            device_hours=round(self.n_members * end, 6),
            counters=dict(sorted(self.counters.items())),
            io=io,
            events=len(self.events),
            digest=hasher.hexdigest(),
            site=self.site,
            series=tuple(self._recorder.binned(
                mission, geometry=self.geometry.label,
                policy=self.policy.name)),
            stream=stream,
            dropped_events=self.events.dropped,
            profile=(self._profiler.table()
                     if self._profiler is not None else None),
            flight=self._recorder.to_snapshot() if self._trace else None,
        )


def run_trial(spec: FleetSpec, geometry: GeometrySpec, policy: PolicySpec,
              trial: int, trace: bool = False,
              profile: bool = False) -> TrialOutcome:
    """Simulate one device's mission; pure in ``(spec, cell, trial)``.

    ``trace=True`` re-runs the same trial with span tracing enabled:
    the verdict, time-to-loss and arrival sequence are identical (spans
    draw no randomness), but the event stream gains span events for the
    Perfetto timeline export, so the per-trial digest differs from the
    untraced run by construction.  ``profile=True`` attaches a wall-time
    self-time profiler — a side table only; digests are unchanged.
    """
    return _Trial(spec, geometry, policy, trial,
                  trace=trace, profile=profile).run()


__all__ = [
    "IntervalScrubScheduler",
    "TRIAL_LOG_EVENTS",
    "TrialOutcome",
    "run_trial",
]
