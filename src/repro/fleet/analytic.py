"""Closed-form reliability estimates that pin the simulator.

The simulator's value is that it runs the *real* recovery machinery,
but that only counts as evidence if a case with known mathematics
matches.  The tractable case is the two-way mirror under a pure
fail-stop process: data is lost exactly when the surviving member
fails inside the repair window opened by the first failure.
"""

from __future__ import annotations

import math
from typing import Any, Dict


def mirror2_loss_probability(failstop_per_hour: float,
                             repair_hours: float,
                             mission_hours: float) -> float:
    """P(data loss by *mission_hours*) for a 2-way mirror, fail-stop only.

    Renewal/Poisson approximation of the two-failure integral: first
    failures arrive at rate ``2λ`` (either member), each opens a repair
    window of length ``R`` (replacement delay + rebuild), and the
    window turns into loss iff the survivor fails within it —
    probability ``1 - exp(-λR)``.  Loss events therefore arrive at rate

        ``μ = 2λ · (1 - exp(-λR))``

    and ``P(loss by T) = 1 - exp(-μT)``.  The approximation drops
    O((λR)²) corrections (windows are assumed rare and non-overlapping),
    which at the campaign's operating point (λR ≈ 0.015) is far below
    Monte Carlo resolution at hundreds of trials.
    """
    if failstop_per_hour < 0 or repair_hours < 0 or mission_hours < 0:
        raise ValueError("rates and horizons must be non-negative")
    lam = failstop_per_hour
    p_window = 1.0 - math.exp(-lam * repair_hours)
    loss_rate = 2.0 * lam * p_window
    return 1.0 - math.exp(-loss_rate * mission_hours)


def binomial_tolerance(p: float, trials: int, z: float = 4.0,
                       slack: float = 0.015) -> float:
    """How far a simulated frequency may sit from analytic *p*.

    ``z`` standard deviations of the binomial proportion estimator plus
    a fixed *slack* for the renewal approximation's own model error.
    z=4 keeps the false-alarm rate per check around 6e-5 while still
    catching real bugs (a mis-sized repair window shifts p by far more
    than 4σ at 200 trials).
    """
    if trials <= 0:
        raise ValueError("tolerance needs at least one trial")
    sigma = math.sqrt(max(p * (1.0 - p), 1e-12) / trials)
    return z * sigma + slack


def crosscheck_summary(observed_losses: int, trials: int,
                       failstop_per_hour: float, repair_hours: float,
                       mission_hours: float, z: float = 4.0) -> Dict[str, Any]:
    """Compare a simulated mirror2 cell against the closed form.

    Returns a JSON-ready record with the analytic probability, the
    simulated frequency, the tolerance, and the verdict — embedded in
    ``BENCH_fleet.json`` so the cross-check travels with the matrix.
    """
    expected = mirror2_loss_probability(
        failstop_per_hour, repair_hours, mission_hours)
    observed = observed_losses / trials if trials else 0.0
    tolerance = binomial_tolerance(expected, max(trials, 1), z=z)
    return {
        "failstop_per_hour": failstop_per_hour,
        "repair_hours": round(repair_hours, 6),
        "mission_hours": mission_hours,
        "trials": trials,
        "analytic_loss_probability": round(expected, 6),
        "simulated_loss_probability": round(observed, 6),
        "tolerance": round(tolerance, 6),
        "within_tolerance": abs(observed - expected) <= tolerance,
    }


__all__ = ["binomial_tolerance", "crosscheck_summary", "mirror2_loss_probability"]
