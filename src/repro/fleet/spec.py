"""Declarative fleet campaign specification.

A :class:`FleetSpec` pins everything a campaign needs — geometries,
policies, arrival rates, mission length, trial count, and the root
seed — as frozen, picklable, JSON-round-trippable dataclasses, so the
same spec reproduces the same outcome digest on any machine at any
``--jobs`` width.  ``python -m repro fleet --spec fleet.json`` loads
one; the defaults below are the committed ``BENCH_fleet.json`` matrix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.fleet.rates import DEFAULT_ACCELERATION, FaultRates, GRAY_VANINGEN


@dataclass(frozen=True)
class GeometrySpec:
    """One redundancy geometry in the matrix.

    ``kind`` is ``"single"`` (a bare one-disk stack, the R_zero
    baseline) or one of the array geometries from
    :data:`repro.redundancy.array.GEOMETRIES`; ``members`` counts the
    member disks (data + parity for the striped kinds).
    """

    label: str
    kind: str
    members: int

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "kind": self.kind, "members": self.members}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GeometrySpec":
        return cls(str(data["label"]), str(data["kind"]), int(data["members"]))


@dataclass(frozen=True)
class PolicySpec:
    """One IRON maintenance policy in the matrix.

    The knobs map onto the taxonomy: ``retries`` is the R_retry depth
    applied to member reads; the array geometries supply R_redundancy
    inherently; ``stop_on_fault`` is R_stop (freeze the array at the
    first detected fault rather than risk compound damage).  Scrub
    interval/increment drive the fleet-clock scheduler from satellite 2,
    and ``rebuild_concurrency`` scales reconstruction bandwidth, which
    shrinks the post-replacement vulnerability window.
    """

    name: str
    #: Hours between scrub ticks; 0 disables scrubbing (and with it the
    #: periodic foreground reads, so detection happens only on rebuild
    #: or at the mission-end verify).
    scrub_interval_hours: float = 168.0
    #: Scrub units advanced per tick; 0 means a full remaining pass.
    scrub_units_per_tick: int = 0
    #: R_retry depth for member/device reads (0 = no retry).
    retries: int = 0
    #: R_stop: freeze at the first detected fault instead of recovering.
    stop_on_fault: bool = False
    #: Hours from a fail-stop to the replacement drive being seated.
    replace_delay_hours: float = 24.0
    #: Reconstruction bandwidth of one rebuild stream, in member blocks
    #: per hour; total rate is ``rebuild_rate * rebuild_concurrency``.
    rebuild_rate_blocks_per_hour: float = 16.0
    rebuild_concurrency: int = 1
    #: Foreground reads issued each tick (exercises degraded reads and
    #: R_retry on live traffic, not just scrub).
    io_reads_per_tick: int = 4
    #: When set, this policy's cells run at these rates instead of the
    #: spec-wide ones — how the analytic cross-check cell isolates the
    #: fail-stop process.
    rates_override: Optional[FaultRates] = None

    def rebuild_hours(self, member_blocks: int) -> float:
        """Length of the reconstruction window for one member."""
        rate = self.rebuild_rate_blocks_per_hour * max(1, self.rebuild_concurrency)
        return member_blocks / rate if rate > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "scrub_interval_hours": self.scrub_interval_hours,
            "scrub_units_per_tick": self.scrub_units_per_tick,
            "retries": self.retries,
            "stop_on_fault": self.stop_on_fault,
            "replace_delay_hours": self.replace_delay_hours,
            "rebuild_rate_blocks_per_hour": self.rebuild_rate_blocks_per_hour,
            "rebuild_concurrency": self.rebuild_concurrency,
            "io_reads_per_tick": self.io_reads_per_tick,
        }
        if self.rates_override is not None:
            data["rates_override"] = self.rates_override.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PolicySpec":
        override = data.get("rates_override")
        return cls(
            name=str(data["name"]),
            scrub_interval_hours=float(data.get("scrub_interval_hours", 168.0)),
            scrub_units_per_tick=int(data.get("scrub_units_per_tick", 0)),
            retries=int(data.get("retries", 0)),
            stop_on_fault=bool(data.get("stop_on_fault", False)),
            replace_delay_hours=float(data.get("replace_delay_hours", 24.0)),
            rebuild_rate_blocks_per_hour=float(
                data.get("rebuild_rate_blocks_per_hour", 16.0)),
            rebuild_concurrency=int(data.get("rebuild_concurrency", 1)),
            io_reads_per_tick=int(data.get("io_reads_per_tick", 4)),
            rates_override=FaultRates.from_dict(override) if override else None,
        )


#: The acceptance matrix: the R_zero baseline plus every PR 6 geometry.
DEFAULT_GEOMETRIES: Tuple[GeometrySpec, ...] = (
    GeometrySpec("single", "single", 1),
    GeometrySpec("mirror2", "mirror", 2),
    GeometrySpec("mirror3", "mirror", 3),
    GeometrySpec("parity4", "parity", 4),
    GeometrySpec("rdp5", "rdp", 5),
)

#: Policy axis: weekly scrub baseline; aggressive daily scrub with
#: retries and 4-wide rebuild; no maintenance at all; and R_stop.
DEFAULT_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec("baseline"),
    PolicySpec("fast-scrub", scrub_interval_hours=24.0, retries=2,
               replace_delay_hours=12.0, rebuild_concurrency=4),
    PolicySpec("no-scrub", scrub_interval_hours=0.0),
    PolicySpec("stop-first", stop_on_fault=True),
)

#: Fail-stop rate for the analytic cross-check cell, chosen so a
#: 10,000-hour mission at a ~28-hour repair window yields a mirror2
#: loss probability near 0.14 — large enough that 200 trials resolve
#: it cleanly against the closed-form two-failure integral.
CROSSCHECK_FAILSTOP_PER_HOUR = 5.2e-4

#: The cross-check policy: fail-stop arrivals only (no latent errors,
#: no corruption, no scrub), so the simulation measures exactly the
#: process the mirror2 closed form integrates.
CROSSCHECK_POLICY = PolicySpec(
    "failstop-only",
    scrub_interval_hours=0.0,
    io_reads_per_tick=0,
    rates_override=FaultRates(
        failstop_per_hour=CROSSCHECK_FAILSTOP_PER_HOUR,
        lse_per_hour=0.0, transient_fraction=0.0, corruption_per_hour=0.0,
        acceleration=1.0,
    ),
)

#: Geometry the cross-check runs on (must stay mirror2 — the closed
#: form is the two-way-mirror double-failure integral).
CROSSCHECK_GEOMETRY = GeometrySpec("mirror2", "mirror", 2)


@dataclass(frozen=True)
class FleetSpec:
    """Everything one campaign needs, frozen and picklable."""

    name: str = "default"
    trials: int = 200
    mission_hours: float = 10_000.0
    num_blocks: int = 64
    block_size: int = 512
    seed: int = 20260807
    rates: FaultRates = field(
        default_factory=lambda: GRAY_VANINGEN.accelerated(DEFAULT_ACCELERATION))
    geometries: Tuple[GeometrySpec, ...] = DEFAULT_GEOMETRIES
    policies: Tuple[PolicySpec, ...] = DEFAULT_POLICIES
    #: Append the mirror2 × failstop-only analytic cross-check cell.
    crosscheck: bool = True
    #: Skip a scrub tick's scan while nothing has been armed/corrupted
    #: since the last clean pass — outcome-identical (a scan of an
    #: untouched array repairs nothing) but much cheaper.
    skip_clean_scrubs: bool = True

    def cells(self) -> Tuple[Tuple[GeometrySpec, PolicySpec], ...]:
        """The (geometry, policy) matrix in deterministic enumeration
        order, cross-check cell last."""
        grid = [(g, p) for g in self.geometries for p in self.policies]
        if self.crosscheck:
            grid.append((CROSSCHECK_GEOMETRY, CROSSCHECK_POLICY))
        return tuple(grid)

    def rates_for(self, policy: PolicySpec) -> FaultRates:
        return policy.rates_override if policy.rates_override is not None else self.rates

    def scaled(self, **changes: Any) -> "FleetSpec":
        """A copy with fields replaced (trials, seed, mission...)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trials": self.trials,
            "mission_hours": self.mission_hours,
            "num_blocks": self.num_blocks,
            "block_size": self.block_size,
            "seed": self.seed,
            "rates": self.rates.to_dict(),
            "geometries": [g.to_dict() for g in self.geometries],
            "policies": [p.to_dict() for p in self.policies],
            "crosscheck": self.crosscheck,
            "skip_clean_scrubs": self.skip_clean_scrubs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        spec = cls()
        geometries: Iterable[Any] = data.get("geometries", ())
        policies: Iterable[Any] = data.get("policies", ())
        return cls(
            name=str(data.get("name", spec.name)),
            trials=int(data.get("trials", spec.trials)),
            mission_hours=float(data.get("mission_hours", spec.mission_hours)),
            num_blocks=int(data.get("num_blocks", spec.num_blocks)),
            block_size=int(data.get("block_size", spec.block_size)),
            seed=int(data.get("seed", spec.seed)),
            rates=(FaultRates.from_dict(data["rates"])
                   if "rates" in data else spec.rates),
            geometries=(tuple(GeometrySpec.from_dict(g) for g in geometries)
                        or spec.geometries),
            policies=(tuple(PolicySpec.from_dict(p) for p in policies)
                      or spec.policies),
            crosscheck=bool(data.get("crosscheck", spec.crosscheck)),
            skip_clean_scrubs=bool(
                data.get("skip_clean_scrubs", spec.skip_clean_scrubs)),
        )

    @classmethod
    def load(cls, path: Path) -> "FleetSpec":
        """Load a spec from a JSON file (missing keys take defaults)."""
        return cls.from_dict(json.loads(Path(path).read_text()))


__all__ = [
    "CROSSCHECK_FAILSTOP_PER_HOUR",
    "CROSSCHECK_GEOMETRY",
    "CROSSCHECK_POLICY",
    "DEFAULT_GEOMETRIES",
    "DEFAULT_POLICIES",
    "FleetSpec",
    "GeometrySpec",
    "PolicySpec",
]
