"""Fleet-scale Monte Carlo reliability simulation.

The IRON taxonomy evaluated at datacenter scale: thousands of
array-backed :class:`~repro.disk.stack.DeviceStack` trials per
(geometry × policy) cell, each advancing a virtual fleet clock over
device-hours and sampling fail-stop / latent-sector-error / silent-
corruption arrivals from seeded distributions calibrated to the Gray &
van Ingen measurements.  Faults inject through the real
``FaultInjector``/array machinery — detection, scrub, degraded reads
and ``rebuild_member`` run the actual recovery paths — and the headline
artifact is a data-loss-probability-per-policy matrix cross-checked
against the closed-form mirror2 two-failure integral.

Entry points: ``python -m repro fleet``, :func:`run_fleet`.
"""

from repro.fleet.analytic import binomial_tolerance, mirror2_loss_probability
from repro.fleet.campaign import CellResult, FleetReport, run_fleet
from repro.fleet.rates import FaultRates, GRAY_VANINGEN, default_rates
from repro.fleet.sim import IntervalScrubScheduler, TrialOutcome, run_trial
from repro.fleet.spec import (
    CROSSCHECK_POLICY,
    DEFAULT_GEOMETRIES,
    DEFAULT_POLICIES,
    FleetSpec,
    GeometrySpec,
    PolicySpec,
)

__all__ = [
    "CROSSCHECK_POLICY",
    "CellResult",
    "DEFAULT_GEOMETRIES",
    "DEFAULT_POLICIES",
    "FaultRates",
    "FleetReport",
    "FleetSpec",
    "GRAY_VANINGEN",
    "GeometrySpec",
    "IntervalScrubScheduler",
    "PolicySpec",
    "TrialOutcome",
    "binomial_tolerance",
    "default_rates",
    "mirror2_loss_probability",
    "run_fleet",
    "run_trial",
]
