"""Fault arrival rates calibrated to measured disk-error studies.

The base numbers come from Gray & van Ingen, "Empirical Measurements of
Disk Failure Rates and Error Rates" (MSR-TR-2005-166, PAPERS.md):

* **Fail-stop** — drive datasheets claim ~1M-hour MTBF (an annualized
  failure rate under 1%), but the fleets they survey observe **3–7%
  AFR**.  We take the 5% midpoint: ``0.05 / 8760 ≈ 5.7e-6`` whole-disk
  failures per device-hour.
* **Latent sector errors** — SATA datasheets advertise one
  uncorrectable read error per 10^14 bits (~one per 10 TB read).  At a
  modeled steady background load of ~10 GB read per device-hour that
  is ``1e10 * 8 / 1e14 ≈ 8e-4`` errors per hour of *reading*; latent
  errors also arrive while data sits idle (media degradation), which
  field studies put at the same order.  We fold both into
  ``1.1e-5`` new latent sector errors per device-hour — roughly one
  per device-decade, consistent with their observation that real disks
  beat the advertised UER by ~2 orders of magnitude on sequential
  workloads.
* **Transient fraction** — Gray & van Ingen emphasize that many
  observed read errors are *soft* (a retry succeeds, the sector is
  fine); we model 40% of latent-sector-error arrivals as transient,
  which is what makes R_retry a measurably distinct policy.
* **Silent corruption** — their end-to-end file-transfer experiments
  saw "uncorrectable bit errors" that no layer reported, at roughly
  one event per ~30 device-years once controller/firmware causes are
  included: ``2.3e-7`` per device-hour.

Simulating a 10,000-hour mission at the measured rates would need
~10^5 trials per cell to resolve mirror2's loss probability, so
campaigns run **accelerated**: every rate is multiplied by a documented
``acceleration`` factor (default 40×).  This is a standard reliability
trick — it compresses the mission, it does not change which *mechanism*
loses data — and the analytic cross-check runs at the same accelerated
rates, so the comparison stays apples-to-apples.  ``docs/fleet.md``
carries the full calibration table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class FaultRates:
    """Per-device-hour arrival rates for the fail-partial fault model."""

    #: Whole-disk fail-stop arrivals per device-hour (AFR / 8760).
    failstop_per_hour: float
    #: New latent sector errors (unreadable blocks) per device-hour.
    lse_per_hour: float
    #: Fraction of latent sector errors that are transient (a retry
    #: succeeds); the rest are sticky until scrubbed/rewritten.
    transient_fraction: float
    #: Silent corruption events (wrong bytes, no error) per device-hour.
    corruption_per_hour: float
    #: Multiplier already applied to the measured base rates.
    acceleration: float = 1.0

    def accelerated(self, factor: float) -> "FaultRates":
        """These rates with every arrival process sped up *factor*×."""
        if factor <= 0:
            raise ValueError("acceleration factor must be positive")
        return replace(
            self,
            failstop_per_hour=self.failstop_per_hour * factor,
            lse_per_hour=self.lse_per_hour * factor,
            corruption_per_hour=self.corruption_per_hour * factor,
            acceleration=self.acceleration * factor,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "failstop_per_hour": self.failstop_per_hour,
            "lse_per_hour": self.lse_per_hour,
            "transient_fraction": self.transient_fraction,
            "corruption_per_hour": self.corruption_per_hour,
            "acceleration": self.acceleration,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRates":
        return cls(
            failstop_per_hour=float(data["failstop_per_hour"]),
            lse_per_hour=float(data["lse_per_hour"]),
            transient_fraction=float(data.get("transient_fraction", 0.0)),
            corruption_per_hour=float(data.get("corruption_per_hour", 0.0)),
            acceleration=float(data.get("acceleration", 1.0)),
        )


#: The measured (unaccelerated) calibration from MSR-TR-2005-166.
GRAY_VANINGEN = FaultRates(
    failstop_per_hour=0.05 / HOURS_PER_YEAR,   # 5% AFR midpoint of 3-7%
    lse_per_hour=1.1e-5,                        # ~1 latent error / device-decade
    transient_fraction=0.4,                     # soft-error share
    corruption_per_hour=2.3e-7,                 # ~1 silent event / 30 device-years
)

#: Default campaign acceleration: compresses a 10,000-hour mission so
#: 200 trials per cell resolve loss probabilities in the 0.01-0.5 band.
DEFAULT_ACCELERATION = 40.0

#: Rates with no arrivals at all — the zero-rate edge-case fleet.
ZERO_RATES = FaultRates(
    failstop_per_hour=0.0, lse_per_hour=0.0,
    transient_fraction=0.0, corruption_per_hour=0.0,
)


def default_rates(acceleration: float = DEFAULT_ACCELERATION) -> FaultRates:
    """The Gray & van Ingen calibration at campaign acceleration."""
    return GRAY_VANINGEN.accelerated(acceleration)


__all__ = [
    "DEFAULT_ACCELERATION",
    "FaultRates",
    "GRAY_VANINGEN",
    "HOURS_PER_YEAR",
    "ZERO_RATES",
    "default_rates",
]
