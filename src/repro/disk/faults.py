"""The fail-partial fault model (§2.3) as injectable fault specifications.

A :class:`Fault` describes *what* goes wrong: which blocks (by number,
by type, or by predicate), on which operation (read/write), in which way
(block failure vs. corruption), with which persistence (sticky vs.
transient) and locality (a single block or a spatially-local run, as a
media scratch would produce).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.common import rng

#: Memoized noise blocks, keyed by (seed, length).  NOISE corruption is
#: a pure function of the fault's seed and the payload length — the
#: stream is ``random.Random(seed).randrange(256)`` per byte — so the
#: bytes are computed once and reused across every cell that arms the
#: same fault shape.  The generator below reproduces CPython's
#: ``randrange(256)`` exactly (``_randbelow_with_getrandbits``: draw
#: ``bit_length(256) == 9`` bits, reject values >= 256) without the
#: per-byte wrapper overhead; equality with the reference stream is
#: pinned by a unit test.  Seeding routes through ``repro.common.rng``
#: (the no-name form is the legacy ``random.Random(seed)`` exactly).
_NOISE_CACHE: Dict[Tuple[int, int], bytes] = {}


def _noise(seed: int, n: int) -> bytes:
    key = (seed, n)
    cached = _NOISE_CACHE.get(key)
    if cached is None:
        getrandbits = rng.stream(seed).getrandbits
        out = bytearray(n)
        for i in range(n):
            r = getrandbits(9)
            while r >= 256:
                r = getrandbits(9)
            out[i] = r
        cached = _NOISE_CACHE[key] = bytes(out)
    return cached


class FaultOp(enum.Enum):
    READ = "read"
    WRITE = "write"


class FaultKind(enum.Enum):
    #: The request fails with an error code (latent sector error).
    FAIL = "fail"
    #: The request "succeeds" but returns / stores altered data.
    CORRUPT = "corrupt"


class Persistence(enum.Enum):
    #: Every matching access fails (media damage).
    STICKY = "sticky"
    #: The first ``transient_count`` matching accesses fail, then the
    #: fault clears (transport glitch, controller hiccup).
    TRANSIENT = "transient"


class CorruptionMode(enum.Enum):
    #: Replace the block with random noise.
    NOISE = "noise"
    #: Replace the block with zeroes (phantom write / lost write read back).
    ZERO = "zero"
    #: Circularly shift the block by one byte (a documented firmware bug).
    SHIFT = "shift"
    #: Apply a file-system-aware corruptor that flips specific fields,
    #: producing a *plausible but wrong* block (misdirected-write style);
    #: these defeat pure type checks and require checksums to catch.
    FIELD = "field"


@dataclass
class Fault:
    """One armed fault beneath the file system.

    Target selection: exactly one of ``block`` (absolute block number) or
    ``block_type`` (resolved through the injector's type oracle at access
    time) must be given, optionally refined with ``match_index`` to skip
    the first N matching accesses.
    """

    op: FaultOp
    kind: FaultKind
    block: Optional[int] = None
    block_type: Optional[str] = None
    persistence: Persistence = Persistence.STICKY
    transient_count: int = 1
    corruption: CorruptionMode = CorruptionMode.NOISE
    #: FS-specific field corruptor: (block_payload, block_type) -> payload.
    corruptor: Optional[Callable[[bytes, str], bytes]] = None
    #: Spatial locality: also affect this many following blocks (a
    #: scratch across neighbouring sectors).  0 means single block.
    locality_run: int = 0
    #: Skip the first N accesses that match before firing.
    match_index: int = 0
    seed: int = 0

    # -- internal state ----------------------------------------------------
    _fired: int = field(default=0, repr=False)
    _skipped: int = field(default=0, repr=False)
    _locked_block: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if (self.block is None) == (self.block_type is None):
            raise ValueError("specify exactly one of block= or block_type=")
        if self.transient_count < 1:
            raise ValueError("transient faults must fire at least once")
        if self.locality_run < 0:
            raise ValueError("locality_run must be non-negative")

    # -- matching ------------------------------------------------------------

    def _covers(self, block: int) -> bool:
        """Is *block* inside this fault's (possibly sticky-locked) extent?"""
        anchor = self._locked_block if self._locked_block is not None else self.block
        if anchor is None:
            return False
        return anchor <= block <= anchor + self.locality_run

    def matches(self, op: str, block: int, block_type: Optional[str]) -> bool:
        """Would this fault fire for the given access?  (Does not consume.)"""
        if self.op.value != op:
            return False
        if self.exhausted():
            return False
        if self._locked_block is not None:
            # Once a type-targeted sticky fault binds to a concrete block,
            # it keeps failing that block (and its locality run) only.
            return self._covers(block)
        if self.block is not None:
            if not self._covers(block):
                return False
        else:
            if block_type is None or block_type != self.block_type:
                return False
        return True

    def consume(self, block: int) -> bool:
        """Register a matching access.  Returns True if the fault fires
        (as opposed to still skipping toward ``match_index``)."""
        if self._skipped < self.match_index:
            self._skipped += 1
            return False
        if self.block_type is not None and self._locked_block is None:
            self._locked_block = block
        self._fired += 1
        return True

    def exhausted(self) -> bool:
        if self.persistence is Persistence.STICKY:
            return False
        return self._fired >= self.transient_count

    # -- corruption ------------------------------------------------------------

    def corrupt(self, payload: bytes, block_type: Optional[str]) -> bytes:
        """Produce the corrupted version of *payload*."""
        if self.corruption is CorruptionMode.ZERO:
            return b"\x00" * len(payload)
        if self.corruption is CorruptionMode.SHIFT:
            return payload[-1:] + payload[:-1]
        if self.corruption is CorruptionMode.FIELD:
            if self.corruptor is None:
                raise ValueError("FIELD corruption requires a corruptor callable")
            out = self.corruptor(payload, block_type or "")
            if len(out) != len(payload):
                raise ValueError("corruptor changed the block size")
            return out
        return _noise(self.seed or 0xC0FFEE, len(payload))

    def describe(self) -> str:
        target = f"block={self.block}" if self.block is not None else f"type={self.block_type}"
        extra = f"+{self.locality_run}" if self.locality_run else ""
        return (
            f"{self.kind.value}-{self.op.value} {target}{extra} "
            f"({self.persistence.value}"
            + (f" x{self.transient_count}" if self.persistence is Persistence.TRANSIENT else "")
            + ")"
        )


def read_failure(block_type: str, sticky: bool = True, transient_count: int = 1) -> Fault:
    """A latent-sector-error read fault on the next block of *block_type*."""
    return Fault(
        op=FaultOp.READ,
        kind=FaultKind.FAIL,
        block_type=block_type,
        persistence=Persistence.STICKY if sticky else Persistence.TRANSIENT,
        transient_count=transient_count,
    )


def write_failure(block_type: str, sticky: bool = True, transient_count: int = 1) -> Fault:
    """A write fault on the next block of *block_type*."""
    return Fault(
        op=FaultOp.WRITE,
        kind=FaultKind.FAIL,
        block_type=block_type,
        persistence=Persistence.STICKY if sticky else Persistence.TRANSIENT,
        transient_count=transient_count,
    )


def corruption(
    block_type: str,
    mode: CorruptionMode = CorruptionMode.NOISE,
    corruptor: Optional[Callable[[bytes, str], bytes]] = None,
) -> Fault:
    """Silent corruption returned on the next read of *block_type*."""
    return Fault(
        op=FaultOp.READ,
        kind=FaultKind.CORRUPT,
        block_type=block_type,
        corruption=mode,
        corruptor=corruptor,
    )
