"""Write-recording device layer: the *record* side of crash testing.

Sits at the very top of a :class:`~repro.disk.stack.DeviceStack` and
emits one :class:`~repro.obs.events.WriteImageEvent` — block number
plus full payload — into the stack's shared event stream for every
write that passes through.  Interleaved with the journal framing's
``JournalCommitEvent``\\ s, the stream becomes an ordered, replayable
record of exactly what reached the device and in what order, which is
what the crash-state exploration engine (:mod:`repro.crash`) enumerates
prefixes and torn variants of.

Recording is pass-through for reads and adds no virtual disk time; it
observes *above* the fault injector, so what it records is what the
file system asked for (a dropped or corrupted write still records the
intended image — the crash engine replays intent, the injector models
the medium).
"""

from __future__ import annotations

from repro.disk.disk import BlockDevice
from repro.obs.events import EventLog, WriteImageEvent


class WriteRecorder:
    """Transparent top-of-stack layer recording every write's payload."""

    def __init__(self, lower: BlockDevice, events: EventLog):
        self.lower = lower
        self.events = events
        self.enabled = True
        #: Write images captured since construction (metrics source).
        self.recorded = 0

    @property
    def num_blocks(self) -> int:
        return self.lower.num_blocks

    @property
    def block_size(self) -> int:
        return self.lower.block_size

    def read_block(self, block: int) -> bytes:
        return self.lower.read_block(block)

    def write_block(self, block: int, data: bytes) -> None:
        if self.enabled:
            self.events.emit(WriteImageEvent(block=block, data=bytes(data)))
            self.recorded += 1
        self.lower.write_block(block, data)

    # -- uniform stack lifecycle --------------------------------------------

    def flush(self) -> None:
        self.lower.flush()

    def snapshot(self):
        return self.lower.snapshot()

    def restore(self, snapshot) -> None:
        self.lower.restore(snapshot)

    def stall(self, seconds: float) -> None:
        stall = getattr(self.lower, "stall", None)
        if stall is not None:
            stall(seconds)

    @property
    def clock(self) -> float:
        return getattr(self.lower, "clock", 0.0)

    @property
    def stats(self):
        return getattr(self.lower, "stats", None)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"WriteRecorder({state})"
