"""The simulated disk: a byte-accurate block store with virtual time.

This is the bottom of the storage stack (Figure 1).  It models the
*fail-partial* failure surface passively — failures themselves are
introduced by the :class:`~repro.disk.injector.FaultInjector` layered
above, mirroring the paper's software fault-injection layer beneath the
file system.  The disk also models whole-disk failure (the classic
fail-stop case) directly, since that belongs to the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk.geometry import DiskGeometry


@runtime_checkable
class BlockDevice(Protocol):
    """The block-device interface every layer of the stack implements.

    The file system only ever sees this protocol, so a raw disk, a fault
    injector, a cache — or a whole :class:`~repro.disk.stack.DeviceStack`
    — can be stacked interchangeably.  Beyond the data path, every layer
    implements the uniform lifecycle: ``flush()`` drains buffered state,
    ``snapshot()``/``restore()`` capture and rewind contents (each layer
    propagates downward and invalidates its own state on restore), and
    ``stats`` exposes the raw device's cumulative accounting.
    """

    @property
    def num_blocks(self) -> int: ...

    @property
    def block_size(self) -> int: ...

    def read_block(self, block: int) -> bytes: ...

    def write_block(self, block: int, data: bytes) -> None: ...

    def flush(self) -> None: ...

    def snapshot(self) -> List[Optional[bytes]]: ...

    def restore(self, snapshot: List[Optional[bytes]]) -> None: ...

    @property
    def stats(self) -> Optional["DiskStats"]: ...


@dataclass
class DiskStats:
    """Cumulative accounting for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_time_s: float = 0.0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_time_s = 0.0


class SimulatedDisk:
    """An in-memory disk with a seek/rotation/transfer timing model.

    Virtual time accumulates in :attr:`clock`; higher layers (the journal
    commit path in particular) may add explicit stalls via
    :meth:`stall`, which is how commit-ordering waits are charged.

    Contents are stored copy-on-write: a shared immutable *base* image
    (the golden snapshot the fingerprinting harness restores between
    fault-injection cells) plus a private *delta* of blocks written
    since.  :meth:`restore` therefore aliases the snapshot in O(1)
    instead of copying the whole block list, and the snapshot itself is
    never modified — every write privatizes the block into the delta.
    """

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        self._base: List[Optional[bytes]] = [None] * geometry.num_blocks
        self._delta: Dict[int, bytes] = {}
        self._head = 0
        self.clock = 0.0
        self.stats = DiskStats()
        self.failed = False  # whole-disk (fail-stop) failure
        #: Shared typed-event stream, when this disk is part of a
        #: DeviceStack (upper layers and the mounted FS adopt it).
        self.events = None
        #: Optional ``(op, seconds)`` callback invoked with each
        #: request's virtual service time — the metrics layer hangs a
        #: latency histogram here (virtual time, so deterministic).
        self.latency_observer = None

    # -- BlockDevice protocol ----------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.geometry.num_blocks

    @property
    def block_size(self) -> int:
        return self.geometry.block_size

    def read_block(self, block: int) -> bytes:
        self._check_range(block, "read")
        if self.failed:
            raise ReadError(block, "whole-disk failure")
        self._charge(block, is_write=False)
        self.stats.reads += 1
        self.stats.bytes_read += self.block_size
        data = self._get(block)
        if data is None:
            return b"\x00" * self.block_size
        return data

    def write_block(self, block: int, data: bytes) -> None:
        self._check_range(block, "write")
        if self.failed:
            raise WriteError(block, "whole-disk failure")
        if len(data) != self.block_size:
            raise ValueError(
                f"write of {len(data)} bytes to device with {self.block_size}-byte blocks"
            )
        self._charge(block, is_write=True)
        self.stats.writes += 1
        self.stats.bytes_written += self.block_size
        self._delta[block] = bytes(data)

    def flush(self) -> None:
        """Commit buffered state to the medium.  The simulated disk
        writes through, so this is a barrier with no I/O of its own."""

    # -- time ---------------------------------------------------------------

    def stall(self, seconds: float) -> None:
        """Advance virtual time without moving data (ordering waits,
        rotational delays imposed by synchronous commit protocols)."""
        if seconds < 0:
            raise ValueError("cannot stall for negative time")
        self.clock += seconds
        self.stats.busy_time_s += seconds

    def _charge(self, block: int, is_write: bool = False) -> None:
        t = self.geometry.access_time(self._head, block, self.block_size, is_write)
        if block not in (self._head, self._head + 1):
            self.stats.seeks += 1
        self.clock += t
        self.stats.busy_time_s += t
        self._head = block
        if self.latency_observer is not None:
            self.latency_observer("write" if is_write else "read", t)

    # -- control -------------------------------------------------------------

    def fail_whole_disk(self) -> None:
        """Fail-stop the entire device (§2.3: entire disk failure)."""
        self.failed = True

    def revive(self) -> None:
        self.failed = False

    def peek(self, block: int) -> bytes:
        """Read raw contents without advancing time or stats (test/debug
        aid; never used by the file systems themselves)."""
        self._check_range(block, "read")
        data = self._get(block)
        return b"\x00" * self.block_size if data is None else data

    def poke(self, block: int, data: bytes) -> None:
        """Overwrite raw contents out-of-band (used by fault injection to
        model corruption that happened at rest)."""
        self._check_range(block, "write")
        if len(data) != self.block_size:
            raise ValueError("poke payload must be exactly one block")
        self._delta[block] = bytes(data)

    def snapshot(self) -> List[Optional[bytes]]:
        """Freshly merged copy of the raw block contents (harness golden
        images).  The returned list is independent of the device's future
        writes, but callers must treat it as immutable once it has been
        handed to :meth:`restore` — restore aliases it rather than
        copying."""
        if not self._delta:
            return list(self._base)
        merged = list(self._base)
        for block, data in self._delta.items():
            merged[block] = data
        return merged

    def restore(self, snapshot: List[Optional[bytes]]) -> None:
        """Restore contents from a snapshot; resets head, clock and stats.

        Copy-on-write: the snapshot becomes the shared base image in
        O(1) — no per-block copy — and subsequent writes privatize
        blocks into the delta, so the snapshot itself is never mutated
        and may be restored any number of times.
        """
        if len(snapshot) != self.num_blocks:
            raise ValueError("snapshot size does not match device")
        self._base = snapshot
        self._delta = {}
        self._head = 0
        self.clock = 0.0
        self.stats.reset()
        self.failed = False

    def _get(self, block: int) -> Optional[bytes]:
        delta = self._delta.get(block)
        return delta if delta is not None else self._base[block]

    def _check_range(self, block: int, op: str) -> None:
        if not 0 <= block < self.num_blocks:
            raise OutOfRangeError(block, op, self.num_blocks)

    def __repr__(self) -> str:
        return (
            f"SimulatedDisk(blocks={self.num_blocks}, bs={self.block_size}, "
            f"clock={self.clock:.4f}s)"
        )


def make_disk(num_blocks: int, block_size: int = 4096, **timing) -> SimulatedDisk:
    """Convenience constructor used by tests, examples and benchmarks."""
    return SimulatedDisk(DiskGeometry(num_blocks=num_blocks, block_size=block_size, **timing))
