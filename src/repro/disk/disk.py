"""The simulated disk: a byte-accurate block store with virtual time.

This is the bottom of the storage stack (Figure 1).  It models the
*fail-partial* failure surface passively — failures themselves are
introduced by the :class:`~repro.disk.injector.FaultInjector` layered
above, mirroring the paper's software fault-injection layer beneath the
file system.  The disk also models whole-disk failure (the classic
fail-stop case) directly, since that belongs to the device.

Contents live in a **slab**: one contiguous immutable ``bytes`` image
(:class:`SlabImage`) shared copy-on-write between the device and every
snapshot taken from it, plus a dirty-block bitmap and a privatized
delta for blocks written since the last :meth:`SimulatedDisk.restore`.
Snapshots of a clean device and every restore are O(1) aliasing — no
per-block copying — which is what lets the fingerprinting harness
restore one golden image hundreds of times per matrix and the crash
engine ship golden images between processes as a single buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk.geometry import DiskGeometry


class SlabImage:
    """An immutable full-disk image backed by one contiguous slab.

    ``data`` is ``num_blocks * block_size`` bytes; ``written`` is a
    per-block bitmap distinguishing blocks that were actually written
    from never-touched (all-zero) ones, preserving the historical
    list-of-``Optional[bytes]`` snapshot semantics.  The image is the
    unit of copy-on-write sharing: :meth:`SimulatedDisk.restore`
    aliases it in O(1) and writes privatize blocks into the device's
    delta, so an image may back any number of devices (or processes —
    the slab maps directly into shared memory) at once.

    ``meta`` is a free-form per-process cache that layers above hang
    derived state on (e.g. the gray-box block-type oracle caches its
    reconstruction keyed by the blocks it depends on); it never crosses
    process boundaries and never affects the image's identity.

    The image also quacks like the legacy snapshot list: ``len``,
    iteration, indexing and equality all behave as a list of
    per-block ``Optional[bytes]``.
    """

    __slots__ = ("data", "num_blocks", "block_size", "written", "meta",
                 "_view", "_blocks")

    def __init__(self, data, num_blocks: int, block_size: int,
                 written: bytes):
        # data may be bytes or any readable buffer (e.g. a memoryview
        # over a multiprocessing.shared_memory segment) — the image
        # never mutates it either way.
        if len(data) != num_blocks * block_size:
            raise ValueError("slab length does not match geometry")
        if len(written) != num_blocks:
            raise ValueError("written bitmap length does not match geometry")
        self.data = data
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.written = written
        self.meta: Dict = {}
        self._view = memoryview(data)
        self._blocks: Dict[int, bytes] = {}  # lazily materialized bytes

    @classmethod
    def from_blocks(cls, blocks: Iterable[Optional[bytes]],
                    block_size: int) -> "SlabImage":
        """Build an image from the legacy list-of-blocks form."""
        blocks = list(blocks)
        zero = b"\x00" * block_size
        written = bytearray(len(blocks))
        parts = []
        for i, payload in enumerate(blocks):
            if payload is None:
                parts.append(zero)
            else:
                if len(payload) != block_size:
                    raise ValueError("snapshot block has wrong size")
                parts.append(payload)
                written[i] = 1
        return cls(b"".join(parts), len(blocks), block_size, bytes(written))

    def view(self, block: int) -> memoryview:
        """Zero-copy read-only view of one block's contents."""
        off = block * self.block_size
        return self._view[off:off + self.block_size]

    def block(self, block: int) -> Optional[bytes]:
        """Materialized ``bytes`` for *block*, ``None`` if never written.

        Materializations are cached on the image, so repeated reads of
        the same block across any number of restores cost one slice.
        """
        if not self.written[block]:
            return None
        cached = self._blocks.get(block)
        if cached is None:
            off = block * self.block_size
            cached = bytes(self._view[off:off + self.block_size])
            self._blocks[block] = cached
        return cached

    # -- legacy list-of-blocks compatibility --------------------------------

    def __len__(self) -> int:
        return self.num_blocks

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.block(i) for i in range(*index.indices(self.num_blocks))]
        if index < 0:
            index += self.num_blocks
        if not 0 <= index < self.num_blocks:
            raise IndexError(index)
        return self.block(index)

    def __iter__(self):
        for i in range(self.num_blocks):
            yield self.block(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, SlabImage):
            return (self.block_size == other.block_size
                    and self.written == other.written
                    and self._view == other._view)
        if isinstance(other, (list, tuple)):
            return len(other) == self.num_blocks and all(
                self.block(i) == other[i] for i in range(self.num_blocks))
        return NotImplemented

    def __reduce__(self):
        # meta and the materialization cache are per-process; a
        # shared-memory-backed buffer pickles as its bytes copy.
        return (SlabImage, (bytes(self.data), self.num_blocks,
                            self.block_size, self.written))

    def __repr__(self) -> str:
        populated = sum(self.written)
        return (f"SlabImage(blocks={self.num_blocks}, bs={self.block_size}, "
                f"written={populated})")


#: Snapshots are slab images; the legacy list-of-blocks form is still
#: accepted by :meth:`SimulatedDisk.restore` for compatibility.
Snapshot = Union[SlabImage, List[Optional[bytes]]]


@runtime_checkable
class BlockDevice(Protocol):
    """The block-device interface every layer of the stack implements.

    The file system only ever sees this protocol, so a raw disk, a fault
    injector, a cache — or a whole :class:`~repro.disk.stack.DeviceStack`
    — can be stacked interchangeably.  Beyond the data path, every layer
    implements the uniform lifecycle: ``flush()`` drains buffered state,
    ``snapshot()``/``restore()`` capture and rewind contents (each layer
    propagates downward and invalidates its own state on restore), and
    ``stats`` exposes the raw device's cumulative accounting.
    """

    @property
    def num_blocks(self) -> int: ...

    @property
    def block_size(self) -> int: ...

    def read_block(self, block: int) -> bytes: ...

    def write_block(self, block: int, data: bytes) -> None: ...

    def flush(self) -> None: ...

    def snapshot(self) -> SlabImage: ...

    def restore(self, snapshot: Snapshot) -> None: ...

    @property
    def stats(self) -> Optional["DiskStats"]: ...


@dataclass
class DiskStats:
    """Cumulative accounting for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_time_s: float = 0.0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_time_s = 0.0

    def merge(self, other: "DiskStats") -> "DiskStats":
        """Fold *other* into this accounting (associative, in place).

        Mirrors ``MetricsRegistry.merge``: every counter sums, so stats
        from thousands of per-member devices — or per-trial aggregates
        produced in any order by a process pool — compose into one
        fleet-wide total.  Returns ``self`` so ``functools.reduce``
        chains read naturally.
        """
        self.reads += other.reads
        self.writes += other.writes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.seeks += other.seeks
        self.busy_time_s += other.busy_time_s
        return self


class SimulatedDisk:
    """An in-memory disk with a seek/rotation/transfer timing model.

    Virtual time accumulates in :attr:`clock`; higher layers (the journal
    commit path in particular) may add explicit stalls via
    :meth:`stall`, which is how commit-ordering waits are charged.

    Contents are stored copy-on-write over a slab: a shared immutable
    base :class:`SlabImage` (the golden snapshot the fingerprinting
    harness restores between fault-injection cells) plus a dirty-block
    bitmap and a private *delta* of blocks written since.
    :meth:`restore` therefore aliases the snapshot in O(1) instead of
    copying the whole image, :meth:`snapshot` of a clean device is an
    O(1) freeze, and the image itself is never modified — every write
    privatizes the block into the delta.
    """

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        n = geometry.num_blocks
        self._image: Optional[SlabImage] = None  # base slab (None = all zeros)
        self._dirty = bytearray(n)               # 1 = privatized since restore
        self._dirty_count = 0
        self._delta: Dict[int, bytes] = {}       # privatized block contents
        self._zero = b"\x00" * geometry.block_size
        self._head = 0
        self.clock = 0.0
        self.stats = DiskStats()
        self.failed = False  # whole-disk (fail-stop) failure
        #: Shared typed-event stream, when this disk is part of a
        #: DeviceStack (upper layers and the mounted FS adopt it).
        self.events = None
        #: Optional ``(op, seconds)`` callback invoked with each
        #: request's virtual service time — the metrics layer hangs a
        #: latency histogram here (virtual time, so deterministic).
        self.latency_observer = None

    # -- BlockDevice protocol ----------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.geometry.num_blocks

    @property
    def block_size(self) -> int:
        return self.geometry.block_size

    def read_block(self, block: int) -> bytes:
        if not 0 <= block < self.geometry.num_blocks:
            self._check_range(block, "read")
        if self.failed:
            raise ReadError(block, "whole-disk failure")
        self._charge(block, is_write=False)
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += self.geometry.block_size
        if self._dirty[block]:
            return self._delta[block]
        if self._image is not None:
            data = self._image.block(block)
            if data is not None:
                return data
        return self._zero

    def write_block(self, block: int, data: bytes) -> None:
        if not 0 <= block < self.geometry.num_blocks:
            self._check_range(block, "write")
        if self.failed:
            raise WriteError(block, "whole-disk failure")
        if len(data) != self.geometry.block_size:
            raise ValueError(
                f"write of {len(data)} bytes to device with {self.block_size}-byte blocks"
            )
        self._charge(block, is_write=True)
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += self.geometry.block_size
        self._put(block, bytes(data))

    def flush(self) -> None:
        """Commit buffered state to the medium.  The simulated disk
        writes through, so this is a barrier with no I/O of its own."""

    # -- time ---------------------------------------------------------------

    def stall(self, seconds: float) -> None:
        """Advance virtual time without moving data (ordering waits,
        rotational delays imposed by synchronous commit protocols)."""
        if seconds < 0:
            raise ValueError("cannot stall for negative time")
        self.clock += seconds
        self.stats.busy_time_s += seconds

    def _charge(self, block: int, is_write: bool = False) -> None:
        geometry = self.geometry
        head = self._head
        t = geometry.access_time(head, block, geometry.block_size, is_write)
        stats = self.stats
        if block != head and block != head + 1:
            stats.seeks += 1
        self.clock += t
        stats.busy_time_s += t
        self._head = block
        if self.latency_observer is not None:
            self.latency_observer("write" if is_write else "read", t)

    # -- control -------------------------------------------------------------

    def fail_whole_disk(self) -> None:
        """Fail-stop the entire device (§2.3: entire disk failure)."""
        self.failed = True

    def revive(self) -> None:
        self.failed = False

    def peek(self, block: int) -> bytes:
        """Read raw contents without advancing time or stats (gray-box
        access used by the type oracle, fsck and tests; never the data
        path the file systems are charged for)."""
        self._check_range(block, "read")
        data = self._get(block)
        return self._zero if data is None else data

    def peek_view(self, block: int):
        """Zero-copy variant of :meth:`peek`: a buffer (memoryview or
        ``bytes``) over the block's raw contents, valid until the next
        write to that block.  Callers must not mutate it."""
        self._check_range(block, "read")
        if self._dirty[block]:
            return self._delta[block]
        if self._image is not None and self._image.written[block]:
            return self._image.view(block)
        return self._zero

    def poke(self, block: int, data: bytes) -> None:
        """Overwrite raw contents out-of-band (used by fault injection to
        model corruption that happened at rest)."""
        self._check_range(block, "write")
        if len(data) != self.block_size:
            raise ValueError("poke payload must be exactly one block")
        self._put(block, bytes(data))

    # -- copy-on-write slab state --------------------------------------------

    @property
    def base_image(self) -> Optional[SlabImage]:
        """The slab image this device was last restored from (or None)."""
        return self._image

    @property
    def dirty_count(self) -> int:
        """Number of blocks privatized since the last restore."""
        return self._dirty_count

    def any_dirty_in(self, blocks: Iterable[int]) -> bool:
        """True when any of *blocks* was written since the last restore.
        Used by gray-box consumers to decide whether state derived from
        :attr:`base_image` is still valid."""
        dirty = self._dirty
        return any(dirty[b] for b in blocks)

    def dirty_contents(self, blocks: Iterable[int]) -> tuple:
        """``(block, payload)`` for each of *blocks* privatized since the
        last restore, in the given order.  Together with the (immutable)
        base image this fingerprints everything a gray-box walk over
        *blocks* could observe, so derived state memoized on the image
        can be revalidated content-exactly instead of being discarded on
        any write."""
        dirty = self._dirty
        delta = self._delta
        return tuple((b, delta[b]) for b in blocks if dirty[b])

    def dirty_items(self) -> List[Tuple[int, bytes]]:
        """Every privatized ``(block, payload)`` pair, sorted by block —
        ``dirty_contents(range(num_blocks))`` without the full-range
        scan (the delta map holds exactly the dirty set)."""
        return sorted(self._delta.items())

    def fingerprint_matches(self, blocks: Iterable[int], fp: tuple) -> bool:
        """Does ``dirty_contents(blocks)`` equal *fp*?  Equivalent to
        building the tuple and comparing, but bails at the first
        mismatching block so a stale cache entry costs one bitmap scan
        plus at most one payload compare."""
        dirty = self._dirty
        delta = self._delta
        i = 0
        n = len(fp)
        for b in blocks:
            if dirty[b]:
                if i >= n:
                    return False
                entry = fp[i]
                if entry[0] != b or delta[b] != entry[1]:
                    return False
                i += 1
        return i == n

    def snapshot(self) -> SlabImage:
        """Frozen image of the raw block contents (harness golden
        images).  The image is immutable and independent of the
        device's future writes; a clean device (no writes since the
        last restore) returns its base image in O(1) with no per-block
        work."""
        if self._dirty_count == 0 and self._image is not None:
            return self._image
        n, bs = self.num_blocks, self.block_size
        base = self._image
        if base is not None:
            merged = bytearray(base.data)
            written = bytearray(base.written)
        else:
            merged = bytearray(n * bs)
            written = bytearray(n)
        for block, data in self._delta.items():
            off = block * bs
            merged[off:off + bs] = data
            written[block] = 1
        return SlabImage(bytes(merged), n, bs, bytes(written))

    def restore(self, snapshot: Snapshot) -> None:
        """Restore contents from a snapshot; resets head, clock and stats.

        Copy-on-write: the image becomes the shared base slab in O(1)
        — no per-block copy — and subsequent writes privatize blocks
        into the delta, so the image itself is never mutated and may be
        restored any number of times.  The legacy list-of-blocks form
        is converted on the way in.
        """
        if len(snapshot) != self.num_blocks:
            raise ValueError("snapshot size does not match device")
        if not isinstance(snapshot, SlabImage):
            snapshot = SlabImage.from_blocks(snapshot, self.block_size)
        elif snapshot.block_size != self.block_size:
            raise ValueError("snapshot block size does not match device")
        self._image = snapshot
        if self._dirty_count:
            self._dirty = bytearray(self.num_blocks)
            self._dirty_count = 0
            self._delta = {}
        self._head = 0
        self.clock = 0.0
        self.stats.reset()
        self.failed = False

    def _put(self, block: int, data: bytes) -> None:
        self._delta[block] = data
        if not self._dirty[block]:
            self._dirty[block] = 1
            self._dirty_count += 1

    def _get(self, block: int) -> Optional[bytes]:
        if self._dirty[block]:
            return self._delta[block]
        if self._image is not None:
            return self._image.block(block)
        return None

    def _check_range(self, block: int, op: str) -> None:
        if not 0 <= block < self.num_blocks:
            raise OutOfRangeError(block, op, self.num_blocks)

    def __repr__(self) -> str:
        return (
            f"SimulatedDisk(blocks={self.num_blocks}, bs={self.block_size}, "
            f"clock={self.clock:.4f}s)"
        )


def make_disk(num_blocks: int, block_size: int = 4096, **timing) -> SimulatedDisk:
    """Convenience constructor used by tests, examples and benchmarks."""
    return SimulatedDisk(DiskGeometry(num_blocks=num_blocks, block_size=block_size, **timing))
