"""Declarative composition of the block-device stack.

Every consumer used to hand-wire ``SimulatedDisk → FaultInjector →
BlockCache`` (the harness, the benchmark drivers, the CLI, every
example); :class:`DeviceStack` replaces that with one builder that
composes the layers in canonical order, shares a single typed
:class:`~repro.obs.events.EventLog` across them, and exposes the
uniform ``BlockDevice`` lifecycle — ``flush()``, ``snapshot()`` /
``restore()``, ``stats`` — propagated correctly through every layer
(the cache invalidates its LRU on restore, the injector drops its I/O
history, CoW snapshots alias in O(1) regardless of stacking order).

A ``DeviceStack`` is itself a ``BlockDevice``: mount a file system
directly on it and the FS joins the stack's event stream, so injected
errors, buffer-layer retries, journal commits, and policy actions
interleave in one ordered, replayable record.

Canonical order (bottom-up)::

    SimulatedDisk            the medium: CoW contents + timing model
      └─ FaultInjector       fail-partial faults + IOEvent emission
           └─ BlockCache     the host's write-through buffer cache
                └─ WriteRecorder   crash-engine write capture (record=True)

Any of the upper layers may be omitted; ``top`` is whatever ends up
uppermost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.disk.cache import BlockCache
from repro.disk.disk import BlockDevice, DiskStats, SimulatedDisk, make_disk
from repro.disk.injector import FaultInjector, TypeOracle
from repro.disk.recorder import WriteRecorder
from repro.obs.events import EventLog


def walk_devices(root) -> List[BlockDevice]:
    """Every device reachable from *root*, top-down.

    Follows ``.lower`` chains through stacked layers and descends into
    redundancy arrays (anything exposing ``.members`` whose entries
    carry a ``.device`` sub-stack), so a consumer auditing the
    composition — fault-armament checks, metrics sweeps, isinstance
    walks that used to assume ``DeviceStack.layers()`` was flat — sees
    the member disks and injectors of a nested array too.  An id-based
    guard makes accidental cycles terminate.
    """
    out: List[BlockDevice] = []
    seen = set()

    def visit(dev) -> None:
        if dev is None or id(dev) in seen:
            return
        seen.add(id(dev))
        out.append(dev)
        members = getattr(dev, "members", None)
        if members is not None:
            for member in members:
                visit(getattr(member, "device", member))
        visit(getattr(dev, "lower", None))

    if isinstance(root, DeviceStack):
        visit(root.top)
    else:
        visit(root)
    return out


class DeviceStack:
    """A composed block-device stack with one shared event stream."""

    def __init__(
        self,
        disk: BlockDevice,
        *,
        inject: bool = False,
        cache_blocks: Optional[int] = None,
        type_oracle: Optional[TypeOracle] = None,
        events: Optional[EventLog] = None,
        record: bool = False,
    ):
        self.events = events if events is not None else EventLog()
        self.disk = disk
        if getattr(disk, "events", None) is None:
            disk.events = self.events
        top: BlockDevice = disk
        self.injector: Optional[FaultInjector] = None
        if inject:
            self.injector = FaultInjector(top, type_oracle=type_oracle, events=self.events)
            top = self.injector
        self.cache: Optional[BlockCache] = None
        if cache_blocks:
            self.cache = BlockCache(top, cache_blocks)
            top = self.cache
        self.recorder: Optional[WriteRecorder] = None
        if record:
            # Uppermost, so it sees the file system's writes as issued —
            # the crash engine replays *intent*, not the injector's view.
            self.recorder = WriteRecorder(top, self.events)
            top = self.recorder
        self.top: BlockDevice = top

    @classmethod
    def build(
        cls,
        num_blocks: int,
        block_size: int = 4096,
        *,
        inject: bool = False,
        cache_blocks: Optional[int] = None,
        type_oracle: Optional[TypeOracle] = None,
        events: Optional[EventLog] = None,
        record: bool = False,
        array: Optional[str] = None,
        members: int = 2,
        **timing,
    ) -> "DeviceStack":
        """Build a fresh bottom device and compose the requested layers.

        By default the bottom is a bare :func:`make_disk`; pass
        ``array="mirror" | "parity" | "rdp"`` (with *members* copies /
        members / the RDP prime) to put a redundancy array there
        instead — everything above it composes identically.
        """
        if array is not None:
            from repro.redundancy.array import make_array

            bottom: BlockDevice = make_array(
                array, num_blocks, block_size, members=members, **timing)
        else:
            bottom = make_disk(num_blocks, block_size, **timing)
        return cls(
            bottom,
            inject=inject,
            cache_blocks=cache_blocks,
            type_oracle=type_oracle,
            events=events,
            record=record,
        )

    # -- BlockDevice protocol (delegates to the top layer) -------------------

    @property
    def num_blocks(self) -> int:
        return self.top.num_blocks

    @property
    def block_size(self) -> int:
        return self.top.block_size

    def read_block(self, block: int) -> bytes:
        return self.top.read_block(block)

    def write_block(self, block: int, data: bytes) -> None:
        self.top.write_block(block, data)

    def flush(self) -> None:
        self.top.flush()

    def snapshot(self):
        return self.top.snapshot()

    def restore(self, snapshot) -> None:
        """Rewind the whole stack: each layer restores its lower layer
        and invalidates its own state (cache LRU, I/O history).  The
        shared event stream drops its history too — and with it the
        high-water mark — so a consumer's next ``consume_new()`` never
        replays pre-restore events as if the rewound run emitted them."""
        self.top.restore(snapshot)
        self.events.clear()

    @property
    def stats(self) -> DiskStats:
        return self.disk.stats

    @property
    def clock(self) -> float:
        return self.disk.clock

    def stall(self, seconds: float) -> None:
        stall = getattr(self.top, "stall", None)
        if stall is not None:
            stall(seconds)

    # -- gray-box access (the FS's _raw_disk walk stops here) ----------------

    @property
    def geometry(self):
        return self.disk.geometry

    def peek(self, block: int) -> bytes:
        return self.disk.peek(block)

    def peek_view(self, block: int):
        return self.disk.peek_view(block)

    def poke(self, block: int, data: bytes) -> None:
        self.disk.poke(block, data)

    @property
    def base_image(self):
        """The raw disk's base slab image (copy-on-write state)."""
        return self.disk.base_image

    @property
    def dirty_count(self) -> int:
        return self.disk.dirty_count

    def any_dirty_in(self, blocks) -> bool:
        return self.disk.any_dirty_in(blocks)

    def dirty_contents(self, blocks) -> tuple:
        return self.disk.dirty_contents(blocks)

    def fingerprint_matches(self, blocks, fp) -> bool:
        return self.disk.fingerprint_matches(blocks, fp)

    def dirty_items(self):
        return self.disk.dirty_items()

    # -- metrics -------------------------------------------------------------

    def observe_latencies(self, registry) -> None:
        """Feed the raw disk's per-request virtual service times into a
        ``repro_io_latency_seconds`` histogram on *registry*.  Virtual
        time is deterministic, so the histogram is too."""
        hist = {
            op: registry.histogram("repro_io_latency_seconds", op=op)
            for op in ("read", "write")
        }
        self.disk.latency_observer = lambda op, t: hist[op].observe(t)

    def collect_metrics(self, registry) -> None:
        """Export every layer's cumulative counters into *registry*.

        This is the single source the BENCH records and the Prometheus
        exporter both read (the same numbers, one origin): raw-device
        :class:`DiskStats`, buffer-cache hit/miss + hit rate, injector
        armed-fault count, and recorder write captures.
        """
        stats = self.disk.stats
        registry.counter("repro_device_reads_total").inc(stats.reads)
        registry.counter("repro_device_writes_total").inc(stats.writes)
        registry.counter("repro_device_bytes_read_total").inc(stats.bytes_read)
        registry.counter("repro_device_bytes_written_total").inc(stats.bytes_written)
        registry.counter("repro_device_seeks_total").inc(stats.seeks)
        registry.counter("repro_device_busy_seconds_total").inc(stats.busy_time_s)
        if self.cache is not None:
            registry.counter("repro_cache_hits_total", layer="block-cache").inc(
                self.cache.hits
            )
            registry.counter("repro_cache_misses_total", layer="block-cache").inc(
                self.cache.misses
            )
            registry.gauge("repro_cache_hit_rate", layer="block-cache").set(
                self.cache.hit_rate()
            )
        if self.injector is not None:
            registry.gauge("repro_faults_currently_armed").set(
                len(self.injector.faults)
            )
        if self.recorder is not None:
            registry.counter("repro_recorded_writes_total").inc(
                self.recorder.recorded
            )
        # An array bottom exports its own per-member + redundancy-path
        # counters in addition to the logical DiskStats above.
        collect = getattr(self.disk, "collect_metrics", None)
        if collect is not None:
            collect(registry)

    # -- introspection -------------------------------------------------------

    def layers(self) -> List[BlockDevice]:
        """The composed *stack* layers, bottom-up.

        The bottom entry may itself be an array of member sub-stacks;
        use :func:`walk_devices` to enumerate every nested device.
        """
        out: List[BlockDevice] = [self.disk]
        if self.injector is not None:
            out.append(self.injector)
        if self.cache is not None:
            out.append(self.cache)
        if self.recorder is not None:
            out.append(self.recorder)
        return out

    def walk_devices(self) -> List[BlockDevice]:
        """Every device in the stack, top-down, arrays included."""
        return walk_devices(self)

    def describe(self) -> str:
        """One-line bottom-up rendering of the composition."""
        parts = []
        for layer in self.layers():
            describe = getattr(layer, "describe", None)
            parts.append(describe() if describe is not None
                         else type(layer).__name__)
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"DeviceStack({self.describe()}, events={len(self.events)})"
