"""The fault-injection layer (§4.2).

A pseudo-device sitting directly beneath the file system.  It implements
the same :class:`~repro.disk.disk.BlockDevice` protocol as the disk, so
the file system cannot tell it is there.  On each request it consults the
armed :class:`~repro.disk.faults.Fault` set:

* block failure — return the appropriate error code and *do not* issue
  the operation to the underlying disk;
* corruption — read the real data, alter it (random noise or a
  corrupted-field block similar to the expected one), and return it.

Type-aware injection needs to know what each block currently *is* to the
file system; the injector gets this from a *type oracle*, a callable
``block -> type-name`` registered by the harness using gray-box
knowledge of the mounted file system's layout.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.errors import ReadError, WriteError
from repro.disk.disk import BlockDevice
from repro.disk.faults import Fault, FaultKind
from repro.disk.trace import IOTrace
from repro.obs.events import EventLog, FaultArmedEvent

TypeOracle = Callable[[int], Optional[str]]


class FaultInjector:
    """Stackable fault-injecting block device.

    Also records the low-level I/O trace — the third observable of the
    fingerprinting methodology.  Every request becomes a typed
    :class:`~repro.obs.events.IOEvent` in the stack's shared event log
    (``self.events``); :attr:`trace` is the historical query view over
    that stream.
    """

    def __init__(
        self,
        lower: BlockDevice,
        type_oracle: Optional[TypeOracle] = None,
        events: Optional[EventLog] = None,
    ):
        self.lower = lower
        self.type_oracle = type_oracle
        self.faults: List[Fault] = []
        if events is None:
            events = getattr(lower, "events", None)
        if events is None:
            events = EventLog()
        self.events = events
        self.trace = IOTrace(events)

    # -- configuration ------------------------------------------------------

    def arm(self, fault: Fault) -> Fault:
        """Arm a fault; returns it for later inspection."""
        self.faults.append(fault)
        self.events.emit(FaultArmedEvent(
            op=fault.op.value,
            fault_kind=fault.kind.value,
            block=fault.block,
            block_type=fault.block_type,
        ))
        return fault

    def disarm(self, fault: Fault) -> None:
        self.faults.remove(fault)

    def clear_faults(self) -> None:
        self.faults.clear()

    def set_type_oracle(self, oracle: Optional[TypeOracle]) -> None:
        self.type_oracle = oracle

    def block_type_of(self, block: int) -> Optional[str]:
        if self.type_oracle is None:
            return None
        return self.type_oracle(block)

    # -- BlockDevice protocol -------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.lower.num_blocks

    @property
    def block_size(self) -> int:
        return self.lower.block_size

    def read_block(self, block: int) -> bytes:
        btype = self.block_type_of(block)
        fault = self._match("read", block, btype)
        if fault is not None and fault.consume(block):
            if fault.kind is FaultKind.FAIL:
                self.trace.record("read", block, "error", btype)
                raise ReadError(block, f"injected: {fault.describe()}")
            data = self.lower.read_block(block)
            bad = fault.corrupt(data, btype)
            self.trace.record("read", block, "corrupted", btype)
            return bad
        data = self.lower.read_block(block)
        self.trace.record("read", block, "ok", btype)
        return data

    def write_block(self, block: int, data: bytes) -> None:
        btype = self.block_type_of(block)
        fault = self._match("write", block, btype)
        if fault is not None and fault.consume(block):
            if fault.kind is FaultKind.FAIL:
                # The operation never reaches the medium.
                self.trace.record("write", block, "error", btype)
                raise WriteError(block, f"injected: {fault.describe()}")
            # Corrupt-on-write: store altered data but report success
            # (a misdirected/phantom-style firmware fault).
            self.trace.record("write", block, "corrupted", btype)
            self.lower.write_block(block, fault.corrupt(data, btype))
            return
        self.lower.write_block(block, data)
        self.trace.record("write", block, "ok", btype)

    # -- uniform stack lifecycle ------------------------------------------------

    def flush(self) -> None:
        self.lower.flush()

    def snapshot(self):
        return self.lower.snapshot()

    def restore(self, snapshot) -> None:
        """Rewind the device and drop the observed I/O history.  Armed
        faults are configuration, not device state — they stay armed."""
        self.lower.restore(snapshot)
        self.trace.clear()

    # -- passthroughs to the raw disk (when present) ---------------------------

    def stall(self, seconds: float) -> None:
        stall = getattr(self.lower, "stall", None)
        if stall is not None:
            stall(seconds)

    @property
    def clock(self) -> float:
        return getattr(self.lower, "clock", 0.0)

    @property
    def stats(self):
        """The underlying device's :class:`DiskStats`, when it has one —
        lets the timing layer read raw traffic through the stack."""
        return getattr(self.lower, "stats", None)

    # -- internals ----------------------------------------------------------------

    def _match(self, op: str, block: int, btype: Optional[str]) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(op, block, btype):
                return fault
        return None

    def __repr__(self) -> str:
        return f"FaultInjector(faults={len(self.faults)}, trace={len(self.trace)} entries)"
