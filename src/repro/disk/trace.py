"""Low-level I/O traces — a view over the typed event stream.

The fault-injection layer records every request that crosses it as an
:class:`~repro.obs.events.IOEvent` in the stack's shared event log; the
fingerprinting harness (§4.3) uses the stream as one of its three
observables — retries show up as repeated requests for the same block,
redundancy as reads of replica or parity locations, remapping as writes
landing at a different address than the fault-free run.

``IOTrace`` keeps the historical query API (``entries``, ``reads_of``,
``retry_count``…) as a rendering view, exactly as ``SysLog`` does for
log events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.obs.events import EventLog, IOEvent


@dataclass(frozen=True)
class TraceEntry:
    """One request observed at the device boundary."""

    op: str  # "read" | "write"
    block: int
    outcome: str  # "ok" | "error" | "corrupted" | "dropped"
    block_type: Optional[str] = None

    def is_read(self) -> bool:
        return self.op == "read"

    def is_write(self) -> bool:
        return self.op == "write"


class IOTrace:
    """An append-only request trace with the query helpers inference
    needs, backed by the stack's shared event log."""

    def __init__(self, events: Optional[EventLog] = None):
        self.events_log = events if events is not None else EventLog()

    @property
    def entries(self) -> List[TraceEntry]:
        return [
            TraceEntry(e.op, e.block, e.outcome, e.block_type)
            for e in self.events_log.io_events()
        ]

    def record(self, op: str, block: int, outcome: str, block_type: Optional[str] = None) -> None:
        self.events_log.emit(IOEvent(op, block, outcome, block_type))

    def clear(self) -> None:
        """Drop the I/O events (other layers' events stay)."""
        self.events_log.remove_where(lambda e: isinstance(e, IOEvent))

    def __len__(self) -> int:
        return len(self.events_log.io_events())

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    # -- queries used by policy inference ---------------------------------

    def _io(self) -> List[IOEvent]:
        return self.events_log.io_events()

    def reads_of(self, block: int) -> int:
        return sum(1 for e in self._io() if e.is_read() and e.block == block)

    def writes_of(self, block: int) -> int:
        return sum(1 for e in self._io() if e.is_write() and e.block == block)

    def blocks_read(self) -> List[int]:
        return [e.block for e in self._io() if e.is_read()]

    def blocks_written(self) -> List[int]:
        return [e.block for e in self._io() if e.is_write()]

    def errors(self) -> List[TraceEntry]:
        return [e for e in self.entries if e.outcome == "error"]

    def retry_count(self, block: int, op: str) -> int:
        """Requests for *block* beyond the first — i.e. retries."""
        n = sum(1 for e in self._io() if e.op == op and e.block == block)
        return max(0, n - 1)

    def render(self, limit: Optional[int] = None) -> str:
        entries = self.entries
        rows = entries if limit is None else entries[:limit]
        lines = [
            f"{e.op:5} block={e.block:<8} {e.outcome:9}"
            + (f" type={e.block_type}" if e.block_type else "")
            for e in rows
        ]
        if limit is not None and len(entries) > limit:
            lines.append(f"... ({len(entries) - limit} more)")
        return "\n".join(lines)
