"""Low-level I/O traces.

The fault-injection layer records every request that crosses it.  The
fingerprinting harness (§4.3) uses these traces as one of its three
observables — retries show up as repeated requests for the same block,
redundancy as reads of replica or parity locations, remapping as writes
landing at a different address than the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One request observed at the device boundary."""

    op: str  # "read" | "write"
    block: int
    outcome: str  # "ok" | "error" | "corrupted" | "dropped"
    block_type: Optional[str] = None

    def is_read(self) -> bool:
        return self.op == "read"

    def is_write(self) -> bool:
        return self.op == "write"


@dataclass
class IOTrace:
    """An append-only request trace with the query helpers inference needs."""

    entries: List[TraceEntry] = field(default_factory=list)

    def record(self, op: str, block: int, outcome: str, block_type: Optional[str] = None) -> None:
        self.entries.append(TraceEntry(op, block, outcome, block_type))

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    # -- queries used by policy inference ---------------------------------

    def reads_of(self, block: int) -> int:
        return sum(1 for e in self.entries if e.is_read() and e.block == block)

    def writes_of(self, block: int) -> int:
        return sum(1 for e in self.entries if e.is_write() and e.block == block)

    def blocks_read(self) -> List[int]:
        return [e.block for e in self.entries if e.is_read()]

    def blocks_written(self) -> List[int]:
        return [e.block for e in self.entries if e.is_write()]

    def errors(self) -> List[TraceEntry]:
        return [e for e in self.entries if e.outcome == "error"]

    def retry_count(self, block: int, op: str) -> int:
        """Requests for *block* beyond the first — i.e. retries."""
        n = sum(1 for e in self.entries if e.op == op and e.block == block)
        return max(0, n - 1)

    def render(self, limit: Optional[int] = None) -> str:
        rows = self.entries if limit is None else self.entries[:limit]
        lines = [
            f"{e.op:5} block={e.block:<8} {e.outcome:9}"
            + (f" type={e.block_type}" if e.block_type else "")
            for e in rows
        ]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... ({len(self.entries) - limit} more)")
        return "\n".join(lines)
