"""Disk scrubbing — eager detection (§3.2).

A scrubber scans the device during idle time, discovering latent sector
errors from device error codes, and — when a checksum verifier is
supplied — block corruption as well.  Scrubbing is only *useful* when a
means of recovery exists (a replica to repair from), which is exactly
what ixt3 provides; the ablation benchmark measures how much earlier
scrubbing surfaces latent errors compared to lazy, on-access detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import ReadError
from repro.disk.disk import BlockDevice

#: Optional verifier: (block, payload) -> True when the block is intact.
ChecksumVerifier = Callable[[int, bytes], bool]
#: Optional repairer: block -> True when the block was reconstructed.
Repairer = Callable[[int], bool]


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    blocks_scanned: int = 0
    latent_errors: List[int] = field(default_factory=list)
    corruptions: List[int] = field(default_factory=list)
    repaired: List[int] = field(default_factory=list)
    unrepairable: List[int] = field(default_factory=list)

    @property
    def problems(self) -> int:
        return len(self.latent_errors) + len(self.corruptions)

    def render(self) -> str:
        return (
            f"scrubbed {self.blocks_scanned} blocks: "
            f"{len(self.latent_errors)} latent errors, "
            f"{len(self.corruptions)} corruptions, "
            f"{len(self.repaired)} repaired, "
            f"{len(self.unrepairable)} unrepairable"
        )


class Scrubber:
    """Sequentially scans a device, optionally verifying and repairing."""

    def __init__(
        self,
        device: BlockDevice,
        verifier: Optional[ChecksumVerifier] = None,
        repairer: Optional[Repairer] = None,
    ):
        self.device = device
        self.verifier = verifier
        self.repairer = repairer

    def scrub(self, start: int = 0, end: Optional[int] = None) -> ScrubReport:
        """Scan blocks ``[start, end)`` (default: whole device)."""
        if end is None:
            end = self.device.num_blocks
        if not 0 <= start <= end <= self.device.num_blocks:
            raise ValueError("scrub range out of bounds")
        report = ScrubReport()
        for block in range(start, end):
            report.blocks_scanned += 1
            try:
                payload = self.device.read_block(block)
            except ReadError:
                report.latent_errors.append(block)
                self._try_repair(block, report)
                continue
            if self.verifier is not None and not self.verifier(block, payload):
                report.corruptions.append(block)
                self._try_repair(block, report)
        return report

    def _try_repair(self, block: int, report: ScrubReport) -> None:
        if self.repairer is None:
            report.unrepairable.append(block)
            return
        if self.repairer(block):
            report.repaired.append(block)
        else:
            report.unrepairable.append(block)
