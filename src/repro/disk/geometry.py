"""Disk geometry and the virtual-time performance model.

Table 6's overheads are *relative* run times; what drives them is extra
I/O traffic (replica/checksum/parity writes) and ordering stalls
(waiting for journal data before issuing the commit block).  The model
below charges every request a seek component proportional to the
logical distance travelled, an average rotational delay on
non-sequential access, and a transfer time.  It is deliberately simple
— the paper's testbed disk (WDC WD1200BB, 7200 RPM) sets the default
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import DEFAULT_BLOCK_SIZE, MB, MS


@dataclass(frozen=True)
class DiskGeometry:
    """Shape and timing parameters of a simulated drive."""

    num_blocks: int
    block_size: int = DEFAULT_BLOCK_SIZE

    #: Fixed cost to start any seek (settle time), seconds.
    seek_base_s: float = 1.0 * MS
    #: Full-stroke seek cost, seconds; actual seeks scale with the square
    #: root of fractional distance (a standard seek-curve approximation).
    seek_full_s: float = 8.0 * MS
    #: Rotational period (7200 RPM -> 8.33 ms); average wait is half.
    rotation_s: float = 8.33 * MS
    #: Sustained media transfer rate, bytes/second.
    transfer_bps: float = 40.0 * MB
    #: Fraction of the average rotational delay charged to writes.
    #: Commodity drives run write-back caching and command queuing, so
    #: queued writes overlap most of the rotational wait; reads cannot.
    #: (The paper notes ATA write-back caching as a fact of life, §2.2.)
    write_rot_factor: float = 0.5
    #: Forward skips up to this many blocks stay on-track: the head just
    #: lets the gap pass underneath (no settle, no rotational miss).
    near_skip_blocks: int = 8

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("disk must have at least one block")
        if self.block_size <= 0 or self.block_size % 512:
            raise ValueError("block size must be a positive multiple of 512")

    @property
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size

    def seek_time(self, from_block: int, to_block: int) -> float:
        """Seconds to move the head between two logical blocks.

        Sequential access (``to == from + 1``) is free: the head is
        already there.  Otherwise cost grows with sqrt(distance), the
        usual concave seek curve.
        """
        if to_block == from_block + 1 or to_block == from_block:
            return 0.0
        gap = to_block - from_block
        if 0 < gap <= self.near_skip_blocks:
            # Same-track pass-over: wait for the gap to rotate by.
            return self.transfer_time(gap * self.block_size)
        distance = abs(gap) / max(self.num_blocks - 1, 1)
        return self.seek_base_s + self.seek_full_s * distance ** 0.5

    def rotational_delay(self, sequential: bool, is_write: bool = False) -> float:
        """Average rotational wait; sequential requests stream for free,
        and queued writes overlap most of the rotation."""
        if sequential:
            return 0.0
        base = self.rotation_s / 2.0
        return base * self.write_rot_factor if is_write else base

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.transfer_bps

    def access_time(self, from_block: int, to_block: int, nbytes: int,
                    is_write: bool = False) -> float:
        """Total service time for one request.

        Flattened composition of :meth:`seek_time`,
        :meth:`rotational_delay` and :meth:`transfer_time` (bit-exact,
        same summation order) — this runs once per simulated I/O and is
        the single hottest call in long fault matrices.
        """
        gap = to_block - from_block
        transfer = nbytes / self.transfer_bps
        if 0 <= gap <= self.near_skip_blocks:
            # On-track: free for sequential/repeat access, a pass-over
            # wait for short forward skips; no rotational miss either way.
            if gap > 1:
                return gap * self.block_size / self.transfer_bps + transfer
            return transfer
        rot = self.rotation_s / 2.0
        if is_write:
            rot = rot * self.write_rot_factor
        distance = abs(gap) / max(self.num_blocks - 1, 1)
        return (self.seek_base_s + self.seek_full_s * distance ** 0.5
                + rot + transfer)
