"""A write-through LRU block cache (the host's buffer cache).

Sits between the file system and the device.  Read hits cost no disk
time — this is what makes read-intensive workloads (the web server
benchmark) insensitive to IRON read-path additions, as Table 6 shows.
Writes go straight through so that ordering-sensitive journaling code
observes real device behaviour.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.disk.disk import BlockDevice


class BlockCache:
    """Write-through LRU cache over a :class:`BlockDevice`."""

    def __init__(self, lower: BlockDevice, capacity_blocks: int = 1024):
        if capacity_blocks <= 0:
            raise ValueError("cache needs at least one slot")
        self.lower = lower
        self.capacity = capacity_blocks
        self._lru: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def num_blocks(self) -> int:
        return self.lower.num_blocks

    @property
    def block_size(self) -> int:
        return self.lower.block_size

    def read_block(self, block: int) -> bytes:
        if block in self._lru:
            self.hits += 1
            self._lru.move_to_end(block)
            return self._lru[block]
        self.misses += 1
        data = self.lower.read_block(block)
        self._insert(block, data)
        return data

    def write_block(self, block: int, data: bytes) -> None:
        # Write-through: device errors propagate before the cache is
        # updated, so a failed write never leaves stale "clean" data.
        self.lower.write_block(block, data)
        self._insert(block, bytes(data))

    def invalidate(self, block: int) -> None:
        self._lru.pop(block, None)

    def invalidate_all(self) -> None:
        self._lru.clear()

    # -- uniform stack lifecycle --------------------------------------------

    def flush(self) -> None:
        """Write-through: nothing dirty here; propagate the barrier."""
        self.lower.flush()

    def snapshot(self):
        return self.lower.snapshot()

    def restore(self, snapshot) -> None:
        """Rewind the device AND invalidate the LRU — a restored disk
        must never serve pre-restore cached blocks."""
        self.lower.restore(snapshot)
        self.invalidate_all()
        self.reset_stats()

    # -- statistics (read by the benchmark timing layer) --------------------

    def hit_rate(self) -> float:
        """Fraction of reads served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without disturbing cached data."""
        self.hits = 0
        self.misses = 0

    def stall(self, seconds: float) -> None:
        stall = getattr(self.lower, "stall", None)
        if stall is not None:
            stall(seconds)

    @property
    def clock(self) -> float:
        return getattr(self.lower, "clock", 0.0)

    @property
    def stats(self):
        """The underlying device's :class:`DiskStats`, when it has one —
        lets the timing layer read raw traffic through the stack."""
        return getattr(self.lower, "stats", None)

    @property
    def events(self):
        """The stack's shared typed-event stream, when one exists below."""
        return getattr(self.lower, "events", None)

    def _insert(self, block: int, data: bytes) -> None:
        self._lru[block] = data
        self._lru.move_to_end(block)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def __repr__(self) -> str:
        return f"BlockCache(capacity={self.capacity}, hits={self.hits}, misses={self.misses})"
