"""The disk substrate: simulated drive, timing model, fault injection."""

from repro.disk.cache import BlockCache
from repro.disk.disk import (
    BlockDevice,
    DiskStats,
    SimulatedDisk,
    SlabImage,
    Snapshot,
    make_disk,
)
from repro.disk.faults import (
    CorruptionMode,
    Fault,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    read_failure,
    write_failure,
)
from repro.disk.geometry import DiskGeometry
from repro.disk.injector import FaultInjector
from repro.disk.recorder import WriteRecorder
from repro.disk.scrub import ScrubReport, Scrubber
from repro.disk.stack import DeviceStack
from repro.disk.trace import IOTrace, TraceEntry

__all__ = [
    "BlockCache",
    "BlockDevice",
    "CorruptionMode",
    "DeviceStack",
    "DiskGeometry",
    "DiskStats",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultOp",
    "IOTrace",
    "Persistence",
    "ScrubReport",
    "Scrubber",
    "SimulatedDisk",
    "SlabImage",
    "Snapshot",
    "TraceEntry",
    "WriteRecorder",
    "corruption",
    "make_disk",
    "read_failure",
    "write_failure",
]
