"""The pre-slab reference disk: list-of-blocks storage, copying snapshots.

:class:`LegacyListDisk` preserves the original ``SimulatedDisk``
semantics from before the zero-copy slab substrate: contents live in a
``List[Optional[bytes]]``, ``snapshot()`` copies the whole list, and
``restore()`` copies it back.  It exists purely as a differential
oracle — the substrate test suite runs identical workloads over both
implementations and asserts byte-identical policy observations, event
digests, and virtual-clock accounting.  Nothing in the production path
imports it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk.disk import DiskStats
from repro.disk.geometry import DiskGeometry


class LegacyListDisk:
    """Reference implementation of the ``SimulatedDisk`` surface with
    the historical copying snapshot/restore semantics."""

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        self._blocks: List[Optional[bytes]] = [None] * geometry.num_blocks
        self._zero = b"\x00" * geometry.block_size
        self._written_since_restore: Set[int] = set()
        self._head = 0
        self.clock = 0.0
        self.stats = DiskStats()
        self.failed = False
        self.events = None
        self.latency_observer = None

    # -- BlockDevice protocol ----------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.geometry.num_blocks

    @property
    def block_size(self) -> int:
        return self.geometry.block_size

    def read_block(self, block: int) -> bytes:
        self._check_range(block, "read")
        if self.failed:
            raise ReadError(block, "whole-disk failure")
        self._charge(block, is_write=False)
        self.stats.reads += 1
        self.stats.bytes_read += self.block_size
        data = self._blocks[block]
        return self._zero if data is None else data

    def write_block(self, block: int, data: bytes) -> None:
        self._check_range(block, "write")
        if self.failed:
            raise WriteError(block, "whole-disk failure")
        if len(data) != self.block_size:
            raise ValueError(
                f"write of {len(data)} bytes to device with {self.block_size}-byte blocks"
            )
        self._charge(block, is_write=True)
        self.stats.writes += 1
        self.stats.bytes_written += self.block_size
        self._blocks[block] = bytes(data)
        self._written_since_restore.add(block)

    def flush(self) -> None:
        pass

    # -- time ---------------------------------------------------------------

    def stall(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot stall for negative time")
        self.clock += seconds
        self.stats.busy_time_s += seconds

    def _charge(self, block: int, is_write: bool = False) -> None:
        geometry = self.geometry
        head = self._head
        t = geometry.access_time(head, block, geometry.block_size, is_write)
        if block != head and block != head + 1:
            self.stats.seeks += 1
        self.clock += t
        self.stats.busy_time_s += t
        self._head = block
        if self.latency_observer is not None:
            self.latency_observer("write" if is_write else "read", t)

    # -- control -------------------------------------------------------------

    def fail_whole_disk(self) -> None:
        self.failed = True

    def revive(self) -> None:
        self.failed = False

    def peek(self, block: int) -> bytes:
        self._check_range(block, "read")
        data = self._blocks[block]
        return self._zero if data is None else data

    def peek_view(self, block: int):
        return self.peek(block)

    def poke(self, block: int, data: bytes) -> None:
        self._check_range(block, "write")
        if len(data) != self.block_size:
            raise ValueError("poke payload must be exactly one block")
        self._blocks[block] = bytes(data)
        self._written_since_restore.add(block)

    # -- slab-surface compatibility ------------------------------------------
    #
    # The stack and the gray-box oracle probe for copy-on-write state;
    # the legacy disk reports "no shared base image", which sends every
    # consumer down its uncached path.

    @property
    def base_image(self):
        return None

    @property
    def dirty_count(self) -> int:
        return len(self._written_since_restore)

    def any_dirty_in(self, blocks: Iterable[int]) -> bool:
        dirty = self._written_since_restore
        return any(b in dirty for b in blocks)

    def dirty_contents(self, blocks: Iterable[int]) -> tuple:
        dirty = self._written_since_restore
        return tuple((b, self._blocks[b]) for b in blocks if b in dirty)

    def fingerprint_matches(self, blocks: Iterable[int], fp: tuple) -> bool:
        return self.dirty_contents(blocks) == fp

    def dirty_items(self) -> list:
        blocks = self._blocks
        return sorted((b, bytes(blocks[b])) for b in self._written_since_restore)

    # -- snapshot / restore (the historical copying semantics) ---------------

    def snapshot(self) -> List[Optional[bytes]]:
        return list(self._blocks)

    def restore(self, snapshot) -> None:
        if len(snapshot) != self.num_blocks:
            raise ValueError("snapshot size does not match device")
        # Accepts the legacy list form or anything indexable per block
        # (including a SlabImage, which quacks like the list).
        self._blocks = [snapshot[i] for i in range(self.num_blocks)]
        self._written_since_restore = set()
        self._head = 0
        self.clock = 0.0
        self.stats.reset()
        self.failed = False

    def _check_range(self, block: int, op: str) -> None:
        if not 0 <= block < self.num_blocks:
            raise OutOfRangeError(block, op, self.num_blocks)

    def __repr__(self) -> str:
        return (f"LegacyListDisk(blocks={self.num_blocks}, "
                f"bs={self.block_size}, clock={self.clock:.4f}s)")


def make_legacy_disk(num_blocks: int, block_size: int = 4096,
                     **timing) -> LegacyListDisk:
    return LegacyListDisk(DiskGeometry(num_blocks=num_blocks,
                                       block_size=block_size, **timing))
