"""Failure-policy representation.

With the IRON taxonomy in hand, a file system's failure policy can be
described the way one describes a cache-replacement policy (§3): as a
mapping from (fault class, block type, workload) to the sets of
detection and recovery techniques observed.  This module holds that
mapping plus the Figure-2/Figure-3-style renderer and the Table-5
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.taxonomy.detection import Detection
from repro.taxonomy.recovery import Recovery

#: The three fault classes of Figure 2's column groups.
FAULT_CLASSES = ("read-failure", "write-failure", "corruption")


@dataclass(frozen=True)
class PolicyObservation:
    """What fingerprinting observed for one (fault, block, workload) cell."""

    detection: FrozenSet[Detection]
    recovery: FrozenSet[Recovery]
    notes: Tuple[str, ...] = ()
    #: Explainability: references into the recorded event stream that
    #: justify this classification ("{run-label}#e{index}:{kind}" /
    #: "{run-label}#s{span-id}"; resolvable via
    #: :func:`repro.obs.trace.resolve_ref`).
    provenance: Tuple[str, ...] = ()

    @classmethod
    def of(
        cls,
        detection: Iterable[Detection] = (),
        recovery: Iterable[Recovery] = (),
        notes: Sequence[str] = (),
        provenance: Sequence[str] = (),
    ) -> "PolicyObservation":
        return cls(
            frozenset(detection), frozenset(recovery),
            tuple(notes), tuple(provenance),
        )

    def detection_symbols(self) -> str:
        """Superimposed symbols, as Figure 2 overlays multiple mechanisms."""
        marks = sorted(d.symbol for d in self.detection if d is not Detection.ZERO)
        return "".join(marks) if marks else " "

    def recovery_symbols(self) -> str:
        marks = sorted(r.symbol for r in self.recovery if r is not Recovery.ZERO)
        return "".join(marks) if marks else " "

    def is_zero(self) -> bool:
        """True when nothing was detected and nothing recovered."""
        effective_d = self.detection - {Detection.ZERO}
        effective_r = self.recovery - {Recovery.ZERO}
        return not effective_d and not effective_r


Key = Tuple[str, str, str]  # (fault_class, block_type, workload)


@dataclass
class PolicyMatrix:
    """A full fingerprint for one file system: Figure 2 (or 3) as data."""

    fs_name: str
    block_types: List[str]
    workloads: List[str]
    cells: Dict[Key, PolicyObservation] = field(default_factory=dict)
    #: Cells that are grayed out in the figure (workload not applicable
    #: for the block type — e.g. no journal traffic from ``stat``).
    not_applicable: Set[Key] = field(default_factory=set)

    def put(
        self,
        fault_class: str,
        block_type: str,
        workload: str,
        observation: PolicyObservation,
    ) -> None:
        self._validate(fault_class, block_type, workload)
        self.cells[(fault_class, block_type, workload)] = observation

    def mark_not_applicable(self, fault_class: str, block_type: str, workload: str) -> None:
        self._validate(fault_class, block_type, workload)
        self.not_applicable.add((fault_class, block_type, workload))

    def get(self, fault_class: str, block_type: str, workload: str) -> Optional[PolicyObservation]:
        return self.cells.get((fault_class, block_type, workload))

    def _validate(self, fault_class: str, block_type: str, workload: str) -> None:
        if fault_class not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {fault_class!r}")
        if block_type not in self.block_types:
            raise ValueError(f"unknown block type {block_type!r} for {self.fs_name}")
        if workload not in self.workloads:
            raise ValueError(f"unknown workload {workload!r}")

    # -- aggregation (Table 5) ---------------------------------------------

    def technique_counts(self) -> Dict[object, int]:
        """How often each detection/recovery level was observed."""
        counts: Dict[object, int] = {}
        for obs in self.cells.values():
            for d in obs.detection:
                counts[d] = counts.get(d, 0) + 1
            for r in obs.recovery:
                counts[r] = counts.get(r, 0) + 1
        return counts

    def coverage(self) -> Tuple[int, int]:
        """(cells with any detection-or-recovery, total applicable cells)."""
        total = len(self.cells)
        covered = sum(1 for obs in self.cells.values() if not obs.is_zero())
        return covered, total


def relative_frequency_marks(counts: Mapping[object, int], total_cells: int) -> Dict[object, str]:
    """Convert raw counts into Table-5-style check-mark strings.

    More checks mean higher *relative* frequency of use; absent means the
    technique was never observed.
    """
    marks: Dict[object, str] = {}
    for level, count in counts.items():
        if count == 0 or total_cells == 0:
            continue
        fraction = count / total_cells
        if fraction >= 0.5:
            marks[level] = "****"
        elif fraction >= 0.25:
            marks[level] = "***"
        elif fraction >= 0.08:
            marks[level] = "**"
        else:
            marks[level] = "*"
    return marks
