"""The IRON recovery taxonomy (Table 2)."""

from __future__ import annotations

import enum


class Recovery(enum.Enum):
    """Levels of the recovery taxonomy.  Symbols match Figure 2's key;
    levels without a Figure-2 symbol are annotated textually in reports."""

    ZERO = "R_zero"
    PROPAGATE = "R_propagate"
    STOP = "R_stop"
    GUESS = "R_guess"
    RETRY = "R_retry"
    REPAIR = "R_repair"
    REMAP = "R_remap"
    REDUNDANCY = "R_redundancy"

    @property
    def symbol(self) -> str:
        return _SYMBOLS[self]

    @property
    def technique(self) -> str:
        return _TECHNIQUES[self]

    @property
    def comment(self) -> str:
        return _COMMENTS[self]


_SYMBOLS = {
    Recovery.ZERO: " ",
    Recovery.PROPAGATE: "-",
    Recovery.STOP: "|",
    Recovery.GUESS: "?",
    Recovery.RETRY: "/",
    Recovery.REPAIR: "+",
    Recovery.REMAP: ">",
    Recovery.REDUNDANCY: "\\",
}

_TECHNIQUES = {
    Recovery.ZERO: "No recovery",
    Recovery.PROPAGATE: "Propagate error",
    Recovery.STOP: "Stop activity (crash, prevent writes)",
    Recovery.GUESS: "Return 'guess' at block contents",
    Recovery.RETRY: "Retry read or write",
    Recovery.REPAIR: "Repair data structs",
    Recovery.REMAP: "Remaps block or file to different locale",
    Recovery.REDUNDANCY: "Block replication or other forms",
}

_COMMENTS = {
    Recovery.ZERO: "Assumes disk works",
    Recovery.PROPAGATE: "Informs user",
    Recovery.STOP: "Limit amount of damage",
    Recovery.GUESS: "Could be wrong; failure hidden",
    Recovery.RETRY: "Handles failures that are transient",
    Recovery.REPAIR: "Could lose data",
    Recovery.REMAP: "Assumes disk informs FS of failures",
    Recovery.REDUNDANCY: "Enables recovery from loss/corruption",
}


def render_recovery_table() -> str:
    """Regenerate Table 2."""
    lines = [f"{'Level':14} {'Technique':44} Comment"]
    for level in Recovery:
        lines.append(f"{level.value:14} {level.technique:44} {level.comment}")
    return "\n".join(lines)
