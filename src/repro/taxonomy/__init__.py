"""The IRON taxonomy: detection levels, recovery levels, failure policy."""

from repro.taxonomy.detection import Detection, render_detection_table
from repro.taxonomy.policy import (
    FAULT_CLASSES,
    PolicyMatrix,
    PolicyObservation,
    relative_frequency_marks,
)
from repro.taxonomy.recovery import Recovery, render_recovery_table
from repro.taxonomy.render import render_full_figure, render_key, render_matrix

__all__ = [
    "Detection",
    "FAULT_CLASSES",
    "PolicyMatrix",
    "PolicyObservation",
    "Recovery",
    "relative_frequency_marks",
    "render_detection_table",
    "render_full_figure",
    "render_key",
    "render_matrix",
    "render_recovery_table",
]
