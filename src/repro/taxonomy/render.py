"""ASCII renderers for Figure-2/Figure-3-style policy matrices."""

from __future__ import annotations

from typing import List

from repro.taxonomy.detection import Detection
from repro.taxonomy.policy import FAULT_CLASSES, PolicyMatrix
from repro.taxonomy.recovery import Recovery

_CELL_WIDTH = 3


def render_matrix(matrix: PolicyMatrix, aspect: str, fault_class: str) -> str:
    """Render one panel: *aspect* is ``"detection"`` or ``"recovery"``,
    *fault_class* one of read-failure / write-failure / corruption.

    Cells show superimposed technique symbols; ``.`` marks a
    not-applicable (grayed) cell; blank means level Zero.
    """
    if aspect not in ("detection", "recovery"):
        raise ValueError("aspect must be 'detection' or 'recovery'")
    if fault_class not in FAULT_CLASSES:
        raise ValueError(f"unknown fault class {fault_class!r}")

    workload_letters = [chr(ord("a") + i) for i in range(len(matrix.workloads))]
    header = " " * 14 + " ".join(f"{w:>{_CELL_WIDTH - 1}}" for w in workload_letters)
    lines = [
        f"{matrix.fs_name} {aspect.capitalize()} — {fault_class}",
        header,
    ]
    for btype in matrix.block_types:
        row: List[str] = [f"{btype:13}"]
        for workload in matrix.workloads:
            key = (fault_class, btype, workload)
            if key in matrix.not_applicable:
                row.append(f"{'.':>{_CELL_WIDTH - 1}}")
                continue
            obs = matrix.cells.get(key)
            if obs is None:
                row.append(f"{'.':>{_CELL_WIDTH - 1}}")
                continue
            syms = obs.detection_symbols() if aspect == "detection" else obs.recovery_symbols()
            row.append(f"{syms.strip() or ' ':>{_CELL_WIDTH - 1}}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_full_figure(matrix: PolicyMatrix) -> str:
    """Render all six panels (2 aspects x 3 fault classes) plus the key,
    mirroring the layout of Figure 2 / Figure 3."""
    panels = []
    for aspect in ("detection", "recovery"):
        for fault_class in FAULT_CLASSES:
            panels.append(render_matrix(matrix, aspect, fault_class))
    panels.append(render_key())
    panels.append(_render_workload_legend(matrix))
    return "\n\n".join(panels)


def render_key() -> str:
    det = ", ".join(
        f"'{d.symbol}' = {d.value}" for d in Detection if d is not Detection.ZERO
    )
    rec = ", ".join(
        f"'{r.symbol}' = {r.value}" for r in Recovery if r is not Recovery.ZERO
    )
    return (
        "Key for Detection: (blank) = D_zero, " + det + "\n"
        "Key for Recovery:  (blank) = R_zero, " + rec + "\n"
        "'.' = workload not applicable for this block type"
    )


def _render_workload_legend(matrix: PolicyMatrix) -> str:
    pairs = [
        f"{chr(ord('a') + i)}: {name}" for i, name in enumerate(matrix.workloads)
    ]
    return "Workloads — " + "  ".join(pairs)
