"""The IRON detection taxonomy (Table 1)."""

from __future__ import annotations

import enum


class Detection(enum.Enum):
    """Levels of the detection taxonomy, ordered from weakest to
    strongest.  The symbols match Figure 2's key."""

    ZERO = "D_zero"
    ERROR_CODE = "D_errorcode"
    SANITY = "D_sanity"
    REDUNDANCY = "D_redundancy"

    @property
    def symbol(self) -> str:
        return _SYMBOLS[self]

    @property
    def technique(self) -> str:
        return _TECHNIQUES[self]

    @property
    def comment(self) -> str:
        return _COMMENTS[self]


_SYMBOLS = {
    Detection.ZERO: " ",
    Detection.ERROR_CODE: "-",
    Detection.SANITY: "|",
    Detection.REDUNDANCY: "\\",
}

_TECHNIQUES = {
    Detection.ZERO: "No detection",
    Detection.ERROR_CODE: "Check return codes from lower levels",
    Detection.SANITY: "Check data structures for consistency",
    Detection.REDUNDANCY: "Redundancy over one or more blocks",
}

_COMMENTS = {
    Detection.ZERO: "Assumes disk works",
    Detection.ERROR_CODE: "Assumes lower level can detect errors",
    Detection.SANITY: "May require extra space per block",
    Detection.REDUNDANCY: "Detect corruption in end-to-end way",
}


def render_detection_table() -> str:
    """Regenerate Table 1."""
    lines = [f"{'Level':14} {'Technique':42} Comment"]
    for level in Detection:
        lines.append(f"{level.value:14} {level.technique:42} {level.comment}")
    return "\n".join(lines)
