"""Redundancy codes beyond single parity (§3.3's future exploration)."""

from repro.redundancy.array import (
    ArrayDevice,
    ArrayMember,
    ArrayScrubReport,
    ArraySnapshot,
    GEOMETRIES,
    MirrorDevice,
    RDPDevice,
    ScrubSchedule,
    StripeParityDevice,
    make_array,
)
from repro.redundancy.rdp import RDPStripe, encode_blocks, is_prime

__all__ = [
    "ArrayDevice",
    "ArrayMember",
    "ArrayScrubReport",
    "ArraySnapshot",
    "GEOMETRIES",
    "MirrorDevice",
    "RDPDevice",
    "RDPStripe",
    "ScrubSchedule",
    "StripeParityDevice",
    "encode_blocks",
    "is_prime",
    "make_array",
]
