"""Redundancy codes beyond single parity (§3.3's future exploration)."""

from repro.redundancy.rdp import RDPStripe, encode_blocks, is_prime

__all__ = ["RDPStripe", "encode_blocks", "is_prime"]
