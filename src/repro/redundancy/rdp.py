"""Row-Diagonal Parity (RDP) — double-erasure-correcting redundancy.

§3.3 notes that beyond replication and single parity, "more complex
encodings ... could also be used, a subject worthy of future
exploration", citing Corbett et al.'s Row-Diagonal Parity (FAST '04),
which high-end arrays adopted precisely to survive a second latent
sector error during reconstruction.  This module implements RDP as a
pure library over byte-string "blocks", usable by a future ixt3
variant that wants two-failure tolerance per file.

Layout (p prime):

* ``p - 1`` data columns (0 .. p-2),
* one **row-parity** column (index p-1): XOR across each row,
* one **diagonal-parity** column (index p): XOR across each diagonal
  ``d = (row + col) mod p`` for d in 0..p-2; diagonal p-1 is the
  "missing" diagonal and is not stored.

Each column holds ``p - 1`` blocks.  Any two erased columns can be
reconstructed; the classic proof shows the iterative chain below always
terminates when p is prime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple


def _xor(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    This is the inner loop of every parity and reconstruction
    operation, so it runs as one wide integer XOR instead of a Python
    byte loop (~2 orders of magnitude on 4 KiB blocks; equivalence is
    pinned by a property test against the byte-by-byte form).
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("xor operands must have equal length")
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).to_bytes(n, "little")


def is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class RDPStripe:
    """One RDP stripe: ``p - 1`` rows by ``p + 1`` columns of blocks."""

    def __init__(self, p: int, block_size: int):
        if not is_prime(p):
            raise ValueError(f"p must be prime, got {p}")
        if p < 3:
            raise ValueError("p must be at least 3")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.p = p
        self.block_size = block_size

    # -- geometry -----------------------------------------------------------

    @property
    def data_columns(self) -> int:
        return self.p - 1

    @property
    def rows(self) -> int:
        return self.p - 1

    @property
    def row_parity_column(self) -> int:
        return self.p - 1

    @property
    def diag_parity_column(self) -> int:
        return self.p

    def diagonal_of(self, row: int, col: int) -> int:
        """Diagonal number of a cell in columns 0..p-1."""
        return (row + col) % self.p

    # -- encode -------------------------------------------------------------------

    def encode(self, data: Sequence[Sequence[bytes]]) -> List[List[bytes]]:
        """Compute the full stripe from data columns.

        *data* is ``p - 1`` columns of ``p - 1`` blocks each; returns
        ``p + 1`` columns with row and diagonal parity appended.
        """
        p, bs = self.p, self.block_size
        if len(data) != self.data_columns:
            raise ValueError(f"expected {self.data_columns} data columns")
        for col in data:
            if len(col) != self.rows:
                raise ValueError(f"each column must hold {self.rows} blocks")
            for block in col:
                if len(block) != bs:
                    raise ValueError("block size mismatch")

        columns: List[List[bytes]] = [list(col) for col in data]
        # Row parity across data columns.
        row_parity = []
        for r in range(self.rows):
            acc = bytes(bs)
            for c in range(self.data_columns):
                acc = _xor(acc, columns[c][r])
            row_parity.append(acc)
        columns.append(row_parity)
        # Diagonal parity across columns 0..p-1 (data + row parity).
        diag = [bytes(bs) for _ in range(self.rows)]
        for c in range(p):
            for r in range(self.rows):
                d = self.diagonal_of(r, c)
                if d == p - 1:
                    continue  # the missing diagonal
                diag[d] = _xor(diag[d], columns[c][r])
        columns.append(diag)
        return columns

    # -- verify ---------------------------------------------------------------------

    def verify(self, columns: Sequence[Sequence[bytes]]) -> bool:
        """True when both parity columns are consistent with the data."""
        recomputed = self.encode([columns[c] for c in range(self.data_columns)])
        return (list(map(bytes, columns[self.row_parity_column]))
                == recomputed[self.row_parity_column]
                and list(map(bytes, columns[self.diag_parity_column]))
                == recomputed[self.diag_parity_column])

    # -- reconstruct ---------------------------------------------------------------------

    def reconstruct(
        self,
        columns: Sequence[Optional[Sequence[bytes]]],
    ) -> List[List[bytes]]:
        """Rebuild up to two erased columns (``None`` entries).

        Raises :class:`ValueError` when more than two columns are gone.
        """
        p, bs = self.p, self.block_size
        if len(columns) != p + 1:
            raise ValueError(f"expected {p + 1} columns")
        missing = [c for c, col in enumerate(columns) if col is None]
        if len(missing) > 2:
            raise ValueError("RDP tolerates at most two erased columns")
        if not missing:
            return [list(map(bytes, col)) for col in columns]  # type: ignore[arg-type]

        grid: Dict[Tuple[int, int], Optional[bytes]] = {}
        for c in range(p + 1):
            for r in range(self.rows):
                grid[(r, c)] = None if columns[c] is None else bytes(columns[c][r])

        if self.diag_parity_column in missing:
            others = [c for c in missing if c != self.diag_parity_column]
            if others:
                # Rebuild the other column from row parity alone...
                (other,) = others
                for r in range(self.rows):
                    acc = bytes(bs)
                    for c in range(p):
                        if c == other:
                            continue
                        acc = _xor(acc, grid[(r, c)])  # type: ignore[arg-type]
                    grid[(r, other)] = acc
            # ...then recompute diagonal parity from scratch.
            rebuilt = [[grid[(r, c)] for r in range(self.rows)] for c in range(self.data_columns)]
            return self.encode(rebuilt)  # type: ignore[arg-type]

        # Two (or one) missing among columns 0..p-1: iterate rows and
        # diagonals, solving every constraint with a single unknown.
        unknown: Set[Tuple[int, int]] = {
            (r, c) for (r, c), v in grid.items() if v is None
        }
        progress = True
        while unknown and progress:
            progress = False
            # Row constraints: columns 0..p-1 XOR to zero per row
            # (row parity is included in the XOR as its own column).
            for r in range(self.rows):
                holes = [(r, c) for c in range(p) if (r, c) in unknown]
                if len(holes) == 1:
                    acc = bytes(bs)
                    for c in range(p):
                        if (r, c) == holes[0]:
                            continue
                        acc = _xor(acc, grid[(r, c)])  # type: ignore[arg-type]
                    grid[holes[0]] = acc
                    unknown.remove(holes[0])
                    progress = True
            # Diagonal constraints for d in 0..p-2.
            for d in range(p - 1):
                cells = [(r, c) for c in range(p) for r in range(self.rows)
                         if self.diagonal_of(r, c) == d]
                holes = [cell for cell in cells if cell in unknown]
                if len(holes) == 1:
                    acc = bytes(grid[(d, self.diag_parity_column)])  # type: ignore[arg-type]
                    for cell in cells:
                        if cell == holes[0]:
                            continue
                        acc = _xor(acc, grid[cell])  # type: ignore[arg-type]
                    grid[holes[0]] = acc
                    unknown.remove(holes[0])
                    progress = True
        if unknown:
            raise ValueError("reconstruction did not converge (corrupt stripe?)")
        return [[grid[(r, c)] for r in range(self.rows)]  # type: ignore[misc]
                for c in range(p + 1)]


def encode_blocks(blocks: Sequence[bytes], p: int) -> Tuple[List[List[bytes]], int]:
    """Convenience: pack a flat block list into RDP stripes.

    Returns (list of encoded stripes, blocks of padding added).
    """
    if not blocks:
        raise ValueError("nothing to encode")
    bs = len(blocks[0])
    stripe = RDPStripe(p, bs)
    per_stripe = stripe.data_columns * stripe.rows
    padded = list(blocks)
    padding = (-len(padded)) % per_stripe
    padded.extend([bytes(bs)] * padding)
    out = []
    for base in range(0, len(padded), per_stripe):
        chunk = padded[base:base + per_stripe]
        data = [chunk[c * stripe.rows:(c + 1) * stripe.rows]
                for c in range(stripe.data_columns)]
        out.append(stripe.encode(data))
    return out, padding
