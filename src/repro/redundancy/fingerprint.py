"""Figure-2-style fingerprint rows for redundancy arrays.

The file-system matrices ask *"what does the FS do when its (single)
disk misbehaves?"*; these rows ask the same question one layer down:
what does the **array** do when a *member* misbehaves — and the answer
is classified by exactly the same machinery
(:func:`repro.fingerprint.inference.infer_policy` over typed events
into IRON D_*/R_* levels), so R_redundancy stops being a level the
repro can only talk about and becomes one it measures.

Rows (the matrix's "block types") are member-fault scenarios:

* ``member-lse`` — a single latent sector error at the faulted
  block's data location.  Every geometry reconstructs (R_redundancy)
  and read-repairs.
* ``member-lse-x2`` — latent sector errors on *two* members of the
  same stripe.  Single-redundancy geometries (2-way mirror, single
  parity) lose data and propagate EIO; RDP reconstructs.
* ``member-failstop`` — a member fail-stops, reads run degraded, the
  member is replaced and rebuilt **while a second latent error sits on
  a surviving peer** (the §3.3 motivation for double parity: only RDP
  rebuilds fully).
* ``member-corrupt`` — a member block is silently corrupted at rest;
  only ``scrub()`` can notice (D_redundancy), and repair needs either
  a voting majority (3-way mirror) or locatable parity (RDP).

Each cell is a baseline-vs-faulty differential over one raw-array
workload (write a working set, read it all back, scrub), exactly the
harness recipe.  :func:`run_array_fingerprint` fans cells across the
persistent pool by (geometry, scenario) — the fold digest is defined
over merge order, so ``jobs=N`` output is byte-identical to
``jobs=1``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReadError, WriteError
from repro.common.pool import pool_map
from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.workloads import OpResult
from repro.obs.events import EventLog, fold_digest
from repro.redundancy.array import ArrayDevice, make_array
from repro.taxonomy.policy import PolicyMatrix

#: (scenario row, IRON fault class) in figure order.
ARRAY_SCENARIOS: List[Tuple[str, str]] = [
    ("member-lse", "read-failure"),
    ("member-lse-x2", "read-failure"),
    ("member-failstop", "read-failure"),
    ("member-corrupt", "corruption"),
]

#: (label, geometry, members) — the matrix columns-of-matrices.
ARRAY_GEOMETRIES: List[Tuple[str, str, int]] = [
    ("mirror2", "mirror", 2),
    ("mirror3", "mirror", 3),
    ("parity4", "parity", 4),
    ("rdp5", "rdp", 5),
]

_GEOMETRY_BY_LABEL = {label: (geom, members)
                      for label, geom, members in ARRAY_GEOMETRIES}

WORKLOAD = "array-io"
NUM_BLOCKS = 64
BLOCK_SIZE = 512
#: The logical block every scenario faults.
TARGET = 13


def _payload(block: int) -> bytes:
    return bytes([(block * 37 + 11) % 256]) * BLOCK_SIZE


def _build(label: str) -> ArrayDevice:
    geometry, members = _GEOMETRY_BY_LABEL[label]
    array = make_array(geometry, NUM_BLOCKS, BLOCK_SIZE, members=members)
    array.events = EventLog()
    for block in range(NUM_BLOCKS):
        array.write_block(block, _payload(block))
    array.events.clear()
    return array


def _run_workload(array: ArrayDevice) -> Tuple[List[OpResult], list]:
    """The differential workload: read the working set, then scrub."""
    results: List[OpResult] = []
    for block in range(NUM_BLOCKS):
        try:
            data = array.read_block(block)
        except ReadError as exc:
            results.append(OpResult(f"read:{block}", "EIO", str(exc)))
        else:
            digest = hashlib.sha256(data).hexdigest()[:12]
            results.append(OpResult(f"read:{block}", None, digest))
    try:
        array.scrub()
        # Admin ops carry no detail: their outcome is judged from the
        # typed events, and a detail diff would read as fabricated
        # *user* data to the differential.
        results.append(OpResult("scrub", None))
    except (ReadError, WriteError) as exc:  # pragma: no cover - defensive
        results.append(OpResult("scrub", "EIO"))
    return results, list(array.events)


def _peer_of(array: ArrayDevice, member: int, member_block: int) -> int:
    """A different member holding data of the same stripe/block."""
    for other in range(len(array.members)):
        if other != member:
            return other
    raise AssertionError("array with one member")


def _arm_scenario(array: ArrayDevice, scenario: str) -> None:
    m, mb = array._locate(TARGET)
    if scenario == "member-lse":
        array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
    elif scenario == "member-lse-x2":
        peer = _peer_of(array, m, mb)
        array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
        array.members[peer].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
    elif scenario == "member-corrupt":
        array.members[m].disk.poke(mb, b"\xa5" * BLOCK_SIZE)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")


def _run_failstop(array: ArrayDevice) -> Tuple[List[OpResult], list]:
    """member-failstop: degraded reads, then a rebuild that collides
    with a latent error on a surviving peer."""
    m, mb = array._locate(TARGET)
    array.fail_member(m)
    results, _ = _run_workload(array)
    peer = _peer_of(array, m, mb)
    array.members[peer].injector.arm(
        Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
    array.revive_member(m)
    array.replace_member(m)
    array.rebuild_member(m)
    results.append(OpResult("rebuild", None))
    for block in range(NUM_BLOCKS):
        try:
            data = array.read_block(block)
        except ReadError as exc:
            results.append(OpResult(f"reread:{block}", "EIO", str(exc)))
        else:
            digest = hashlib.sha256(data).hexdigest()[:12]
            results.append(OpResult(f"reread:{block}", None, digest))
    return results, list(array.events)


def fingerprint_cell(label: str, scenario: str) -> Tuple[object, str]:
    """One (geometry, scenario) differential: returns the classified
    :class:`PolicyObservation` plus the observed run's event digest."""
    fault_class = dict(ARRAY_SCENARIOS)[scenario]

    baseline_array = _build(label)
    base_results, base_events = _run_workload(baseline_array)
    if scenario == "member-failstop":
        # The baseline for the rebuild run repeats the same op sequence
        # fault-free, so the differential isolates the member faults.
        baseline_array = _build(label)
        base_results, base_events = _run_failstop_baseline(baseline_array)

    observed_array = _build(label)
    if scenario == "member-failstop":
        obs_results, obs_events = _run_failstop(observed_array)
    else:
        _arm_scenario(observed_array, scenario)
        obs_results, obs_events = _run_workload(observed_array)

    fault = Fault(
        FaultOp.READ,
        FaultKind.CORRUPT if fault_class == "corruption" else FaultKind.FAIL,
        block=TARGET,
    )
    baseline = RunObservation(results=base_results, events=base_events)
    observed = RunObservation(
        results=obs_results,
        events=obs_events,
        fault_fired=1,
        fault_block=None,  # member faults live below the logical space
        label=f"{label}:{scenario}",
    )
    observation = infer_policy(baseline, observed, fault, redundancy_types=[])
    hasher = hashlib.sha256()
    fold_digest(hasher, f"{label}:{scenario}", obs_events)
    return observation, hasher.hexdigest()


def _run_failstop_baseline(array: ArrayDevice) -> Tuple[List[OpResult], list]:
    """Fault-free twin of :func:`_run_failstop`: same op sequence, no
    member faults (rebuild of an intact replacement is the baseline)."""
    m, _mb = array._locate(TARGET)
    results, _ = _run_workload(array)
    array.replace_member(m)
    array.rebuild_member(m)
    results.append(OpResult("rebuild", None))
    for block in range(NUM_BLOCKS):
        data = array.read_block(block)
        digest = hashlib.sha256(data).hexdigest()[:12]
        results.append(OpResult(f"reread:{block}", None, digest))
    return results, list(array.events)


@dataclass
class ArrayFingerprint:
    """The full array matrix: one :class:`PolicyMatrix` per geometry
    plus a fold digest over every observed event stream (the jobs=N
    determinism witness recorded in ``BENCH_array.json``)."""

    matrices: Dict[str, PolicyMatrix] = field(default_factory=dict)
    digest: str = ""

    def render(self) -> str:
        from repro.taxonomy.render import render_matrix

        panels = []
        for label, matrix in self.matrices.items():
            for aspect in ("detection", "recovery"):
                for fault_class in ("read-failure", "corruption"):
                    panels.append(render_matrix(matrix, aspect, fault_class))
        panels.append(f"event digest: {self.digest}")
        return "\n\n".join(panels)


def _cell_worker(label: str, scenario: str):
    observation, digest = fingerprint_cell(label, scenario)
    return label, scenario, observation, digest


def run_array_fingerprint(
    jobs: int = 1,
    labels: Optional[List[str]] = None,
    progress=None,
) -> ArrayFingerprint:
    """Run every (geometry, scenario) cell, ``jobs`` at a time.

    Cells merge in enumeration order, so the fold digest — and the
    rendered matrices — are identical at any ``jobs`` width.
    """
    chosen = labels or [label for label, _, _ in ARRAY_GEOMETRIES]
    for label in chosen:
        if label not in _GEOMETRY_BY_LABEL:
            raise ValueError(f"unknown array geometry label {label!r}")
    tasks = [(label, scenario)
             for label in chosen
             for scenario, _fault_class in ARRAY_SCENARIOS]
    rows = pool_map(_cell_worker, tasks, jobs)
    result = ArrayFingerprint()
    hasher = hashlib.sha256()
    for label, scenario, observation, cell_digest in rows:
        matrix = result.matrices.get(label)
        if matrix is None:
            matrix = result.matrices[label] = PolicyMatrix(
                fs_name=f"array:{label}",
                block_types=[s for s, _ in ARRAY_SCENARIOS],
                workloads=[WORKLOAD],
            )
        fault_class = dict(ARRAY_SCENARIOS)[scenario]
        matrix.put(fault_class, scenario, WORKLOAD, observation)
        hasher.update(f"{label}:{scenario}:{cell_digest}".encode())
        if progress is not None:
            progress(f"array {label}: {scenario} classified")
    result.digest = hasher.hexdigest()
    return result
