"""Multi-disk redundancy arrays (§3.3, R_redundancy made real).

The repro historically mounted every file system on exactly one
:class:`~repro.disk.disk.SimulatedDisk`; this module generalizes the
bottom of the stack into an *array*: N member sub-stacks (each a
``SimulatedDisk`` plus its own :class:`~repro.disk.injector.FaultInjector`)
behind one logical ``BlockDevice``.  An array drops into
:class:`~repro.disk.stack.DeviceStack` wherever a bare disk goes, so
all five file systems mount on it unchanged.

Three geometries:

* :class:`MirrorDevice` — N-way replication.  Reads fail over between
  replicas and *read-repair* the copy that errored; scrub compares
  replicas and majority-votes silent corruption (N >= 3).
* :class:`StripeParityDevice` — RAID-5-style rotating single parity.
  One stripe block per member per stripe; reads of a failed member
  reconstruct by XOR of the survivors; writes are read-modify-write
  with a full-stripe fallback.
* :class:`RDPDevice` — Row-Diagonal Parity (Corbett et al., FAST '04),
  backed by the :class:`~repro.redundancy.rdp.RDPStripe` kernel:
  ``p - 1`` data columns, row parity, diagonal parity; survives any
  **two** member erasures — the second latent sector error during
  reconstruction that motivates double parity.

Everything the array observes or does is reported through the typed
event stream with IRON levels attached: member errors surface as
:class:`~repro.obs.events.ArrayDetectionEvent` (D_errorcode during I/O,
D_redundancy during scrub) and every reconstruction path — degraded
read, degraded write, read-repair, rebuild, scrub repair — emits an
:class:`~repro.obs.events.ArrayRecoveryEvent` with mechanism
``"redundancy"``, which is exactly what
:func:`repro.fingerprint.inference.infer_policy` classifies as
R_redundancy structurally.

The array is crash-engine compatible: ``snapshot()`` composes the
members' O(1) CoW snapshots into an :class:`ArraySnapshot`, ``poke``
applies a logical write out-of-band *with parity maintained*, and the
logical dirty-block delta backs the engine's content-keyed memos, so
power-cut/torn-state enumeration replays through degraded-mode
recovery like it does over a bare disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk.disk import DiskStats, SimulatedDisk, SlabImage, make_disk
from repro.disk.geometry import DiskGeometry
from repro.disk.injector import FaultInjector
from repro.obs.events import (
    ArrayDetectionEvent,
    ArrayPolicyEvent,
    ArrayRecoveryEvent,
    EventLog,
    Severity,
    StorageEvent,
)
from repro.redundancy.rdp import RDPStripe, _xor


class ArrayMember:
    """One member sub-stack: a raw disk under its own fault injector.

    The member keeps a private event log for its boundary I/O trace
    (the injector's :class:`~repro.obs.events.IOEvent` stream); the
    array's *logical* events — detections, recoveries, policy actions
    — go to the array's shared stream instead, so the stream a mounted
    file system joins tells the logical story.
    """

    def __init__(self, index: int, num_blocks: int, block_size: int,
                 timing: Optional[dict] = None,
                 member_log_events: Optional[int] = 4096):
        self.index = index
        self.events = EventLog(max_events=member_log_events)
        self.disk = make_disk(num_blocks, block_size, **(timing or {}))
        self.disk.events = self.events
        self.injector = FaultInjector(self.disk, events=self.events)
        #: The top of the member sub-stack — what the array issues I/O to.
        self.device = self.injector

    def replace(self) -> None:
        """Swap in a blank disk of the same geometry (a spare)."""
        old = self.disk
        self.disk = SimulatedDisk(old.geometry)
        self.disk.events = self.events
        self.disk.latency_observer = old.latency_observer
        self.injector.lower = self.disk

    @property
    def failed(self) -> bool:
        return self.disk.failed

    def __repr__(self) -> str:
        return f"ArrayMember({self.index}, {self.disk!r})"


class ArraySnapshot:
    """A composed snapshot: one member CoW image per member, plus the
    array's suspect-block set.  Composing is O(members), not O(blocks)
    — each member image is the usual O(1) slab alias."""

    __slots__ = ("images", "suspects", "stale")

    def __init__(self, images: Iterable[SlabImage],
                 suspects: Iterable[Tuple[int, int]] = (),
                 stale: Iterable[int] = ()):
        self.images: Tuple[SlabImage, ...] = tuple(images)
        self.suspects: Tuple[Tuple[int, int], ...] = tuple(sorted(suspects))
        self.stale: Tuple[int, ...] = tuple(sorted(stale))

    def __eq__(self, other) -> bool:
        if not isinstance(other, ArraySnapshot):
            return NotImplemented
        return (list(self.images) == list(other.images)
                and self.suspects == other.suspects
                and self.stale == other.stale)

    def __reduce__(self):
        return (ArraySnapshot, (self.images, self.suspects, self.stale))

    def __repr__(self) -> str:
        return (f"ArraySnapshot(members={len(self.images)}, "
                f"suspects={len(self.suspects)})")


class _ArrayBaseView:
    """Adapter giving the array a ``base_image``-shaped object: the
    *logical* golden contents, decoded lazily from the member base
    images.  :meth:`block` serves the crash engine's content-key
    canonicalization; :attr:`meta` serves the mount-walk memos the
    file systems keep on their golden image."""

    __slots__ = ("_array",)

    def __init__(self, array: "ArrayDevice"):
        self._array = array

    def block(self, block: int) -> Optional[bytes]:
        m, mb = self._array._locate(block)
        image = self._array.members[m].disk.base_image
        return None if image is None else image.block(mb)

    @property
    def meta(self) -> Dict:
        """Per-golden memo dict, like ``SlabImage.meta``.

        Memo soundness requires the dict to change identity whenever
        the *composite* golden changes, so it is keyed by the tuple of
        member base-image objects (the key holds strong references,
        keeping ids stable for the dict's lifetime)."""
        return self._array._base_meta()


@dataclass
class ArrayScrubReport:
    """Outcome of one scrub pass (or one scheduled increment)."""

    units_scanned: int = 0
    blocks_scanned: int = 0
    #: (member, member-block) pairs that returned device errors.
    latent_errors: List[Tuple[int, int]] = None
    #: (member, member-block) pairs whose contents mismatched redundancy.
    corruptions: List[Tuple[int, int]] = None
    repaired: List[Tuple[int, int]] = None
    unrepairable: List[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        for name in ("latent_errors", "corruptions", "repaired", "unrepairable"):
            if getattr(self, name) is None:
                setattr(self, name, [])

    @property
    def problems(self) -> int:
        return len(self.latent_errors) + len(self.corruptions)

    def merge(self, other: "ArrayScrubReport") -> None:
        self.units_scanned += other.units_scanned
        self.blocks_scanned += other.blocks_scanned
        self.latent_errors.extend(other.latent_errors)
        self.corruptions.extend(other.corruptions)
        self.repaired.extend(other.repaired)
        self.unrepairable.extend(other.unrepairable)

    def render(self) -> str:
        return (f"scrubbed {self.blocks_scanned} member blocks: "
                f"{len(self.latent_errors)} latent errors, "
                f"{len(self.corruptions)} corruptions, "
                f"{len(self.repaired)} repaired, "
                f"{len(self.unrepairable)} unrepairable")


@dataclass
class ScrubSchedule:
    """Background-scrub scheduling: every *every_ops* logical I/Os the
    array scrubs the next *units_per_step* scrub units (a unit is one
    logical block for a mirror, one stripe for parity geometries)."""

    every_ops: int
    units_per_step: int = 8
    hook: Optional[Callable[[ArrayScrubReport], None]] = None


class ArrayDevice:
    """Common machinery for every geometry: the ``BlockDevice``
    protocol plus the gray-box surface a :class:`DeviceStack` (and the
    file systems' ``_raw_disk`` walk, the crash engine, and the
    fingerprinting type oracles) expect from the bottom device.

    Subclasses define the address mapping (:meth:`_locate`), the
    reconstruction path (:meth:`_reconstruct`), the write path
    (:meth:`_write_logical`), out-of-band pokes (:meth:`_poke_logical`),
    member-content derivation for rebuild (:meth:`_member_content`),
    and the scrub unit (:meth:`_scrub_unit`).
    """

    kind = "array"

    def __init__(self, num_blocks: int, block_size: int,
                 member_count: int, member_blocks: int,
                 timing: Optional[dict] = None):
        if num_blocks <= 0:
            raise ValueError("array must expose at least one block")
        self._num_blocks = num_blocks
        self._block_size = block_size
        self._zero = b"\x00" * block_size
        self.members: List[ArrayMember] = [
            ArrayMember(i, member_blocks, block_size, timing)
            for i in range(member_count)
        ]
        #: Logical geometry, for consumers that size themselves off it.
        self.geometry = DiskGeometry(num_blocks=num_blocks,
                                     block_size=block_size,
                                     **(timing or {}))
        #: Shared typed-event stream; adopted by DeviceStack when the
        #: array is stacked (left None until then — healthy I/O emits
        #: nothing, so stacking after construction shares one stream).
        self.events: Optional[EventLog] = None
        #: Logical-interface accounting (live object, mutated in place).
        self.stats = DiskStats()
        # Logical CoW-style dirty tracking (crash-engine content keys).
        self._dirty = bytearray(num_blocks)
        self._dirty_count = 0
        self._delta: Dict[int, bytes] = {}
        self._base_view = _ArrayBaseView(self)
        self._base_metas: Dict[tuple, Dict] = {}
        #: Member blocks whose on-disk contents are known stale (a
        #: member write failed after the array acknowledged the logical
        #: write, or a rebuild has not reached them): reads take the
        #: reconstruction path instead of trusting the member.
        self._suspect: Set[Tuple[int, int]] = set()
        #: Members that were replaced and not yet rebuilt (whole-member
        #: granularity of the same idea).
        self._stale: Set[int] = set()
        self._latency_observer = None
        # Scrub scheduling.
        self._schedule: Optional[ScrubSchedule] = None
        self._scrub_cursor = 0
        self._op_count = 0
        self._in_scrub = False
        # Cumulative redundancy-path counters (collect_metrics).
        self.degraded_reads = 0
        self.degraded_writes = 0
        self.read_repairs = 0
        self.rebuilt_blocks = 0
        self.scrub_repairs = 0
        self.scrub_passes = 0

    # -- BlockDevice protocol ------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def block_size(self) -> int:
        return self._block_size

    def read_block(self, block: int) -> bytes:
        self._check_range(block, "read")
        before = self.clock
        m, mb = self._locate(block)
        data: Optional[bytes] = None
        if self._trusted(m, mb):
            try:
                data = self.members[m].device.read_block(mb)
            except ReadError:
                self._detect(m, mb, "member-read-error", logical=block)
        if data is None:
            data = self._degraded_read(block, m, mb)
        self.stats.reads += 1
        self.stats.bytes_read += self._block_size
        self.stats.busy_time_s += self.clock - before
        self._tick()
        return data

    def write_block(self, block: int, data: bytes) -> None:
        self._check_range(block, "write")
        if len(data) != self._block_size:
            raise ValueError(
                f"write of {len(data)} bytes to array with "
                f"{self._block_size}-byte blocks")
        before = self.clock
        data = bytes(data)
        self._write_logical(block, data)
        self._note(block, data)
        self.stats.writes += 1
        self.stats.bytes_written += self._block_size
        self.stats.busy_time_s += self.clock - before
        self._tick()

    def flush(self) -> None:
        for member in self.members:
            member.device.flush()

    def snapshot(self) -> ArraySnapshot:
        return ArraySnapshot(
            (member.disk.snapshot() for member in self.members),
            self._suspect, self._stale,
        )

    def restore(self, snapshot: ArraySnapshot) -> None:
        if not isinstance(snapshot, ArraySnapshot):
            raise ValueError("array restore needs an ArraySnapshot")
        if len(snapshot.images) != len(self.members):
            raise ValueError("snapshot member count does not match array")
        for member, image in zip(self.members, snapshot.images):
            member.device.restore(image)
        self._suspect = set(snapshot.suspects)
        self._stale = set(snapshot.stale)
        if self._dirty_count:
            self._dirty = bytearray(self._num_blocks)
            self._dirty_count = 0
            self._delta = {}
        self.stats.reset()
        self._scrub_cursor = 0
        self._op_count = 0
        self.degraded_reads = 0
        self.degraded_writes = 0
        self.read_repairs = 0
        self.rebuilt_blocks = 0
        self.scrub_repairs = 0
        self.scrub_passes = 0

    # -- time ----------------------------------------------------------------

    @property
    def clock(self) -> float:
        return max(member.disk.clock for member in self.members)

    def stall(self, seconds: float) -> None:
        """Members share the wall clock: a commit-ordering wait stalls
        every spindle."""
        for member in self.members:
            member.disk.stall(seconds)
        self.stats.busy_time_s += seconds

    @property
    def latency_observer(self):
        return self._latency_observer

    @latency_observer.setter
    def latency_observer(self, callback) -> None:
        self._latency_observer = callback
        for member in self.members:
            member.disk.latency_observer = callback

    # -- gray-box access ------------------------------------------------------

    def peek(self, block: int) -> bytes:
        """Logical contents without charging time or stats: the data
        location's raw bytes, reconstructed from peers when that member
        block is suspect or stale."""
        self._check_range(block, "read")
        return self._peek_logical(block)

    def peek_view(self, block: int):
        return self._peek_logical(block)

    def poke(self, block: int, data: bytes) -> None:
        """Out-of-band logical write, parity maintained (the crash
        engine's state-construction primitive — assumes the affected
        stripe carries no suspect blocks, which holds after the
        ``restore(golden)`` that precedes replay)."""
        self._check_range(block, "write")
        if len(data) != self._block_size:
            raise ValueError("poke payload must be exactly one block")
        data = bytes(data)
        self._poke_logical(block, data)
        self._note(block, data)

    @property
    def base_image(self) -> Optional[_ArrayBaseView]:
        if all(member.disk.base_image is None for member in self.members):
            return None
        return self._base_view

    def _base_meta(self) -> Dict:
        images = tuple(member.disk.base_image for member in self.members)
        key = tuple(id(image) for image in images)
        entry = self._base_metas.get(key)
        if entry is None:
            # A handful of goldens at most live at once (the crash
            # engine restores one; fingerprint loops a few) — evict the
            # oldest rather than growing with every snapshot ever seen.
            # The entry pins the image objects so the ids stay valid.
            if len(self._base_metas) >= 8:
                self._base_metas.pop(next(iter(self._base_metas)))
            entry = self._base_metas[key] = (images, {})
        return entry[1]

    @property
    def dirty_count(self) -> int:
        return self._dirty_count

    def any_dirty_in(self, blocks: Iterable[int]) -> bool:
        dirty = self._dirty
        return any(dirty[b] for b in blocks)

    def dirty_contents(self, blocks: Iterable[int]) -> tuple:
        dirty = self._dirty
        delta = self._delta
        return tuple((b, delta[b]) for b in blocks if dirty[b])

    def dirty_items(self) -> List[Tuple[int, bytes]]:
        return sorted(self._delta.items())

    def fingerprint_matches(self, blocks: Iterable[int], fp: tuple) -> bool:
        dirty = self._dirty
        delta = self._delta
        i = 0
        n = len(fp)
        for b in blocks:
            if dirty[b]:
                if i >= n:
                    return False
                entry = fp[i]
                if entry[0] != b or delta[b] != entry[1]:
                    return False
                i += 1
        return i == n

    # -- member lifecycle -----------------------------------------------------

    def fail_member(self, index: int) -> None:
        """Fail-stop one member (§2.3 whole-disk failure)."""
        self.members[index].disk.fail_whole_disk()

    def revive_member(self, index: int) -> None:
        self.members[index].disk.revive()

    def replace_member(self, index: int) -> None:
        """Swap in a blank spare; the member is *stale* (reads route
        around it) until :meth:`rebuild_member` repopulates it."""
        self.members[index].replace()
        self._stale.add(index)
        self._suspect = {(m, mb) for (m, mb) in self._suspect if m != index}
        self._emit(ArrayPolicyEvent(
            Severity.WARNING, self._source(), "member-replaced",
            f"member {index} replaced with blank spare", member=index))

    def rebuild_member(self, index: int) -> int:
        """Reconstruct every block the member should hold from the
        surviving members and write it back (live reconstruction —
        charged I/O, same data path a background rebuild would use).
        Returns the number of blocks rebuilt; blocks that could not be
        reconstructed (too many concurrent failures) stay suspect and
        raise a ``rebuild-loss`` policy event.
        """
        tracer = self._tracer()
        span = tracer.start("rebuild", "phase",
                            detail=f"member={index}",
                            source=self._source()) if tracer else 0
        rebuilt = 0
        lost: List[int] = []
        member = self.members[index]
        try:
            for mb in range(member.disk.num_blocks):
                content = self._member_content(index, mb)
                if content is None:
                    lost.append(mb)
                    continue
                try:
                    member.device.write_block(mb, content)
                except WriteError:
                    lost.append(mb)
                    continue
                self._suspect.discard((index, mb))
                rebuilt += 1
        finally:
            if tracer:
                tracer.end(span, "ok" if not lost else "error")
        self._stale.discard(index)
        for mb in lost:
            self._suspect.add((index, mb))
        self.rebuilt_blocks += rebuilt
        self._emit(ArrayRecoveryEvent(
            Severity.INFO, self._source(), "rebuild",
            f"rebuilt member {index}: {rebuilt} blocks"
            + (f", {len(lost)} lost" if lost else ""),
            member=index))
        if lost:
            self._emit(ArrayPolicyEvent(
                Severity.ERROR, self._source(), "rebuild-loss",
                f"member {index}: {len(lost)} blocks unreconstructable",
                member=index))
        return rebuilt

    def member_stats(self) -> List[DiskStats]:
        return [member.disk.stats for member in self.members]

    def merged_member_stats(self) -> DiskStats:
        """All members' raw traffic folded into one :class:`DiskStats`
        via the associative ``merge`` — the unit fleet campaigns sum
        across thousands of arrays."""
        total = DiskStats()
        for stats in self.member_stats():
            total.merge(stats)
        return total

    @property
    def degraded(self) -> bool:
        """True while any member is failed or holds stale (pre-rebuild)
        content — the window in which scrubbing would misread expected
        redundancy gaps as damage."""
        return bool(self._stale) or any(m.disk.failed for m in self.members)

    # -- scrub ----------------------------------------------------------------

    @property
    def scrub_units(self) -> int:
        """Total scrub units (logical blocks for mirrors, stripes for
        parity geometries)."""
        raise NotImplementedError

    def scrub(self, start: int = 0, end: Optional[int] = None) -> ArrayScrubReport:
        """Scan scrub units ``[start, end)`` (default: whole array),
        verifying member redundancy and repairing what the geometry can
        repair.  Emits ``scrub-complete`` when the scan reaches the
        array's last unit and ``scrub-loss`` for damage it cannot
        attribute or repair."""
        if end is None:
            end = self.scrub_units
        if not 0 <= start <= end <= self.scrub_units:
            raise ValueError("scrub range out of bounds")
        report = ArrayScrubReport()
        self._in_scrub = True
        try:
            for unit in range(start, end):
                self._scrub_unit(unit, report)
                report.units_scanned += 1
        finally:
            self._in_scrub = False
        self.scrub_repairs += len(report.repaired)
        if report.unrepairable:
            self._emit(ArrayPolicyEvent(
                Severity.ERROR, self._source(), "scrub-loss",
                f"{len(report.unrepairable)} member blocks unrepairable"))
        if end == self.scrub_units:
            self.scrub_passes += 1
            self._emit(ArrayPolicyEvent(
                Severity.INFO, self._source(), "scrub-complete",
                f"pass complete: {report.render()}"))
        return report

    def set_scrub_schedule(self, every_ops: Optional[int],
                           units_per_step: int = 8,
                           hook: Optional[Callable[[ArrayScrubReport], None]] = None,
                           ) -> None:
        """Arm (or with ``None`` disarm) the background scrub: every
        *every_ops* logical I/Os, scrub the next *units_per_step* units
        and invoke *hook* with the increment's report."""
        if every_ops is None:
            self._schedule = None
            return
        if every_ops < 1 or units_per_step < 1:
            raise ValueError("scrub schedule parameters must be >= 1")
        self._schedule = ScrubSchedule(every_ops, units_per_step, hook)

    @property
    def scrub_cursor(self) -> int:
        """Next scrub unit the incremental scan will visit (0 after a
        completed pass)."""
        return self._scrub_cursor

    def scrub_step(self, units: int) -> ArrayScrubReport:
        """Advance the incremental scrub cursor by up to *units* units.

        This is the single stepping primitive behind both schedulers:
        the op-count ``set_scrub_schedule`` hook and the fleet clock's
        interval scheduler (:class:`repro.fleet.sim.IntervalScrubScheduler`).
        The cursor wraps to 0 when a pass completes, so repeated calls
        scan the array round-robin; ``report.units_scanned`` tells the
        caller how far this step actually got.
        """
        if units < 1:
            raise ValueError("scrub step must advance at least one unit")
        start = self._scrub_cursor
        end = min(start + units, self.scrub_units)
        report = self.scrub(start, end)
        self._scrub_cursor = 0 if end >= self.scrub_units else end
        return report

    def _tick(self) -> None:
        self._op_count += 1
        schedule = self._schedule
        if (schedule is None or self._in_scrub
                or self._op_count % schedule.every_ops):
            return
        report = self.scrub_step(schedule.units_per_step)
        if schedule.hook is not None:
            schedule.hook(report)

    # -- metrics ---------------------------------------------------------------

    def collect_metrics(self, registry) -> None:
        """Per-member raw traffic plus the array's redundancy-path
        counters (degraded I/O, repairs, rebuilds, suspects)."""
        for member in self.members:
            stats = member.disk.stats
            labels = {"array": self.kind, "member": str(member.index)}
            registry.counter("repro_array_member_reads_total", **labels).inc(stats.reads)
            registry.counter("repro_array_member_writes_total", **labels).inc(stats.writes)
            registry.counter("repro_array_member_busy_seconds_total", **labels).inc(
                stats.busy_time_s)
        labels = {"array": self.kind}
        registry.counter("repro_array_degraded_reads_total", **labels).inc(
            self.degraded_reads)
        registry.counter("repro_array_degraded_writes_total", **labels).inc(
            self.degraded_writes)
        registry.counter("repro_array_read_repairs_total", **labels).inc(
            self.read_repairs)
        registry.counter("repro_array_rebuilt_blocks_total", **labels).inc(
            self.rebuilt_blocks)
        registry.counter("repro_array_scrub_repairs_total", **labels).inc(
            self.scrub_repairs)
        registry.gauge("repro_array_suspect_blocks", **labels).set(
            len(self._suspect))

    # -- internals -------------------------------------------------------------

    def _locate(self, block: int) -> Tuple[int, int]:
        """Logical block -> (data member index, member block)."""
        raise NotImplementedError

    def _reconstruct(self, block: int, m: int, mb: int) -> bytes:
        """Rebuild one logical block from the surviving members
        (raises :class:`ReadError` when the geometry cannot)."""
        raise NotImplementedError

    def _write_logical(self, block: int, data: bytes) -> None:
        raise NotImplementedError

    def _poke_logical(self, block: int, data: bytes) -> None:
        raise NotImplementedError

    def _peek_logical(self, block: int) -> bytes:
        raise NotImplementedError

    def _member_content(self, m: int, mb: int) -> Optional[bytes]:
        """What member *m* should hold at *mb* (rebuild path); None if
        unreconstructable."""
        raise NotImplementedError

    def _scrub_unit(self, unit: int, report: ArrayScrubReport) -> None:
        raise NotImplementedError

    def _source(self) -> str:
        return f"{self.kind}-array"

    def _trusted(self, m: int, mb: int) -> bool:
        return m not in self._stale and (m, mb) not in self._suspect

    def _member_read(self, m: int, mb: int,
                     logical: Optional[int] = None) -> Optional[bytes]:
        """One member read for a reconstruction path: None when the
        member block is untrusted or errors (the error is a *detected*
        member failure — D_errorcode at the array boundary)."""
        if not self._trusted(m, mb):
            return None
        try:
            return self.members[m].device.read_block(mb)
        except ReadError:
            self._detect(m, mb, "member-read-error", logical=logical)
            return None

    def _member_write(self, m: int, mb: int, data: bytes) -> bool:
        """One member write; a failure marks the block suspect (the
        array *knows* the write did not land — it got the error code)."""
        try:
            self.members[m].device.write_block(mb, data)
        except WriteError:
            self._suspect.add((m, mb))
            self._detect(m, mb, "member-write-error")
            return False
        self._suspect.discard((m, mb))
        return True

    def _degraded_read(self, block: int, m: int, mb: int) -> bytes:
        tracer = self._tracer()
        span = tracer.start("degraded-read", "phase",
                            detail=f"block={block} member={m}",
                            source=self._source()) if tracer else 0
        try:
            data = self._reconstruct(block, m, mb)
        except ReadError:
            if tracer:
                tracer.end(span, "error")
            raise
        self.degraded_reads += 1
        self._emit(ArrayRecoveryEvent(
            Severity.WARNING, self._source(), "degraded-read",
            f"block {block} reconstructed around member {m}",
            block, member=m))
        self._read_repair(m, mb, data, block)
        if tracer:
            tracer.end(span, "ok")
        return data

    def _read_repair(self, m: int, mb: int, data: bytes, block: int) -> None:
        member = self.members[m]
        if m in self._stale or member.disk.failed:
            return
        try:
            member.device.write_block(mb, data)
        except WriteError:
            self._suspect.add((m, mb))
            self._detect(m, mb, "member-write-error", logical=block)
            return
        self._suspect.discard((m, mb))
        self.read_repairs += 1
        self._emit(ArrayRecoveryEvent(
            Severity.INFO, self._source(), "read-repair",
            f"block {block} repaired on member {m}", block, member=m))

    def _detect(self, m: int, mb: int, tag: str,
                logical: Optional[int] = None,
                mechanism: str = "error-code") -> None:
        self._emit(ArrayDetectionEvent(
            Severity.ERROR, self._source(), tag,
            f"member {m} {tag.split('-', 1)[1]} at member block {mb}",
            logical, mechanism=mechanism, member=m))

    def _emit(self, event: StorageEvent) -> None:
        log = self.events
        if log is None:
            log = self.events = EventLog()
        log.emit(event)

    def _tracer(self):
        log = self.events
        tracer = getattr(log, "tracer", None) if log is not None else None
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _note(self, block: int, data: bytes) -> None:
        self._delta[block] = data
        if not self._dirty[block]:
            self._dirty[block] = 1
            self._dirty_count += 1

    def _check_range(self, block: int, op: str) -> None:
        if not 0 <= block < self._num_blocks:
            raise OutOfRangeError(block, op, self._num_blocks)

    def describe(self) -> str:
        inner = " -> ".join(
            type(layer).__name__
            for layer in (self.members[0].disk, self.members[0].injector))
        return f"{type(self).__name__}[{len(self.members)} x ({inner})]"

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(blocks={self._num_blocks}, "
                f"bs={self._block_size}, members={len(self.members)})")


class MirrorDevice(ArrayDevice):
    """N-way replication: every logical block lives on every member.

    Reads spread across replicas (primary = ``block % copies``), fail
    over on member errors, and read-repair the replica that erred;
    writes go to all members and survive any member failure as long as
    one replica lands.  Scrub compares replicas: with three or more
    copies silent corruption is majority-voted and repaired, with two
    it is detected but unattributable (``scrub-loss``).
    """

    kind = "mirror"

    def __init__(self, num_blocks: int, block_size: int = 4096,
                 copies: int = 2, timing: Optional[dict] = None):
        if copies < 2:
            raise ValueError("a mirror needs at least two copies")
        super().__init__(num_blocks, block_size, copies, num_blocks, timing)

    @property
    def scrub_units(self) -> int:
        return self._num_blocks

    def _locate(self, block: int) -> Tuple[int, int]:
        return block % len(self.members), block

    def _replica_order(self, block: int) -> List[int]:
        n = len(self.members)
        primary = block % n
        return [(primary + k) % n for k in range(n)]

    def _reconstruct(self, block: int, m: int, mb: int) -> bytes:
        for other in self._replica_order(block):
            if other == m:
                continue
            data = self._member_read(other, block, logical=block)
            if data is not None:
                return data
        raise ReadError(block, "all mirror members failed")

    def _write_logical(self, block: int, data: bytes) -> None:
        landed = 0
        failed: List[int] = []
        for member in self.members:
            if self._member_write(member.index, block, data):
                landed += 1
            else:
                failed.append(member.index)
        if landed == 0:
            raise WriteError(block, "all mirror members failed")
        if failed:
            self.degraded_writes += 1
            self._emit(ArrayRecoveryEvent(
                Severity.WARNING, self._source(), "degraded-write",
                f"block {block} stored on {landed}/{len(self.members)} copies",
                block, member=failed[0]))

    def _poke_logical(self, block: int, data: bytes) -> None:
        for member in self.members:
            member.disk.poke(block, data)
            self._suspect.discard((member.index, block))

    def _peek_logical(self, block: int) -> bytes:
        for m in self._replica_order(block):
            if self._trusted(m, block):
                return self.members[m].disk.peek(block)
        return self.members[block % len(self.members)].disk.peek(block)

    def _member_content(self, m: int, mb: int) -> Optional[bytes]:
        for other in self._replica_order(mb):
            if other == m:
                continue
            data = self._member_read(other, mb, logical=mb)
            if data is not None:
                return data
        return None

    def _scrub_unit(self, unit: int, report: ArrayScrubReport) -> None:
        copies: Dict[int, bytes] = {}
        errored: List[int] = []
        for member in self.members:
            if member.index in self._stale:
                continue
            report.blocks_scanned += 1
            try:
                copies[member.index] = member.device.read_block(unit)
            except ReadError:
                errored.append(member.index)
                report.latent_errors.append((member.index, unit))
                self._detect(member.index, unit, "member-read-error",
                             logical=unit)
        if not copies:
            for m in errored:
                report.unrepairable.append((m, unit))
            return
        # Reference contents: the majority value (ties break toward the
        # lowest member index, deterministically).
        votes: Dict[bytes, List[int]] = {}
        for m in sorted(copies):
            votes.setdefault(copies[m], []).append(m)
        ranked = sorted(votes.items(), key=lambda kv: (-len(kv[1]), kv[1][0]))
        reference, holders = ranked[0]
        if len(votes) > 1:
            minority = [m for m in sorted(copies) if m not in holders]
            for m in minority:
                report.corruptions.append((m, unit))
            self._detect(minority[0], unit, "member-mismatch",
                         logical=unit, mechanism="redundancy")
            if len(holders) > len(copies) - len(holders):
                for m in minority:
                    if self._repair(m, unit, reference, report):
                        self._emit(ArrayRecoveryEvent(
                            Severity.INFO, self._source(), "scrub-repair",
                            f"block {unit} rewritten on member {m}",
                            unit, member=m))
            else:
                # Two-way (or tied) mismatch: detected, unattributable.
                for m in minority:
                    report.unrepairable.append((m, unit))
        for m in errored:
            self._repair(m, unit, reference, report)

    def _repair(self, m: int, mb: int, data: bytes,
                report: ArrayScrubReport) -> bool:
        if self._member_write(m, mb, data):
            report.repaired.append((m, mb))
            return True
        report.unrepairable.append((m, mb))
        return False


class StripeParityDevice(ArrayDevice):
    """RAID-5-style striping with one rotating parity block per stripe.

    ``members`` disks hold ``members - 1`` data blocks plus one parity
    block per stripe; the parity member rotates (``stripe % members``)
    so parity traffic spreads evenly.  Tolerates one member failure
    per stripe; the small-write path is classic read-modify-write with
    a reconstruct-write fallback when old data or old parity cannot be
    read.
    """

    kind = "parity"

    def __init__(self, num_blocks: int, block_size: int = 4096,
                 members: int = 4, timing: Optional[dict] = None):
        if members < 3:
            raise ValueError("striped parity needs at least three members")
        self.data_members = members - 1
        stripes = -(-num_blocks // self.data_members)  # ceil
        super().__init__(num_blocks, block_size, members, stripes, timing)
        self.stripes = stripes

    @property
    def scrub_units(self) -> int:
        return self.stripes

    def _parity_member(self, stripe: int) -> int:
        return stripe % len(self.members)

    def _locate(self, block: int) -> Tuple[int, int]:
        stripe, i = divmod(block, self.data_members)
        pm = self._parity_member(stripe)
        return (i if i < pm else i + 1), stripe

    def _reconstruct(self, block: int, m: int, mb: int) -> bytes:
        acc = self._zero
        for other in range(len(self.members)):
            if other == m:
                continue
            data = self._member_read(other, mb, logical=block)
            if data is None:
                raise ReadError(
                    block, "second member failure: single parity exhausted")
            acc = _xor(acc, data)
        return acc

    def _write_logical(self, block: int, data: bytes) -> None:
        dm, stripe = self._locate(block)
        pm = self._parity_member(stripe)
        old = self._member_read(dm, stripe, logical=block)
        old_parity = self._member_read(pm, stripe, logical=block)
        if old is not None and old_parity is not None:
            new_parity: Optional[bytes] = _xor(_xor(old_parity, old), data)
        else:
            # Reconstruct-write: parity = new data XOR surviving peers.
            acc: Optional[bytes] = data
            for other in range(len(self.members)):
                if other in (dm, pm):
                    continue
                peer = self._member_read(other, stripe, logical=block)
                if peer is None:
                    acc = None
                    break
                acc = _xor(acc, peer)
            new_parity = acc
        wrote_data = self._member_write(dm, stripe, data)
        wrote_parity = (new_parity is not None
                        and self._member_write(pm, stripe, new_parity))
        if not wrote_data and not wrote_parity:
            raise WriteError(block, "array cannot store block")
        if not wrote_data and wrote_parity:
            # The new contents live only in parity: a degraded write the
            # reconstruction read path will serve (R_redundancy).
            self.degraded_writes += 1
            self._emit(ArrayRecoveryEvent(
                Severity.WARNING, self._source(), "degraded-write",
                f"block {block} held by parity around member {dm}",
                block, member=dm))
        if wrote_data and new_parity is None:
            # Data landed but parity could not be maintained: the stripe
            # has no redundancy until scrubbed/rebuilt.
            self._suspect.add((pm, stripe))

    def _poke_logical(self, block: int, data: bytes) -> None:
        dm, stripe = self._locate(block)
        pm = self._parity_member(stripe)
        self.members[dm].disk.poke(stripe, data)
        self._suspect.discard((dm, stripe))
        acc = self._zero
        for other in range(len(self.members)):
            if other == pm:
                continue
            acc = _xor(acc, self.members[other].disk.peek(stripe))
        self.members[pm].disk.poke(stripe, acc)
        self._suspect.discard((pm, stripe))

    def _peek_logical(self, block: int) -> bytes:
        dm, stripe = self._locate(block)
        if self._trusted(dm, stripe):
            return self.members[dm].disk.peek(stripe)
        pm = self._parity_member(stripe)
        acc = self._zero
        for other in range(len(self.members)):
            if other == dm:
                continue
            if not self._trusted(other, stripe) and other != pm:
                return self.members[dm].disk.peek(stripe)
            acc = _xor(acc, self.members[other].disk.peek(stripe))
        return acc

    def _member_content(self, m: int, mb: int) -> Optional[bytes]:
        acc = self._zero
        for other in range(len(self.members)):
            if other == m:
                continue
            data = self._member_read(other, mb, logical=None)
            if data is None:
                return None
            acc = _xor(acc, data)
        return acc

    def _scrub_unit(self, unit: int, report: ArrayScrubReport) -> None:
        contents: Dict[int, bytes] = {}
        missing: List[int] = []
        for member in self.members:
            if member.index in self._stale:
                missing.append(member.index)
                continue
            report.blocks_scanned += 1
            try:
                contents[member.index] = member.device.read_block(unit)
            except ReadError:
                missing.append(member.index)
                report.latent_errors.append((member.index, unit))
                self._detect(member.index, unit, "member-read-error")
        if len(missing) > 1:
            for m in missing:
                report.unrepairable.append((m, unit))
            return
        if len(missing) == 1:
            m = missing[0]
            acc = self._zero
            for data in contents.values():
                acc = _xor(acc, data)
            if self._member_write(m, unit, acc):
                report.repaired.append((m, unit))
                self._emit(ArrayRecoveryEvent(
                    Severity.INFO, self._source(), "scrub-repair",
                    f"stripe {unit} block rebuilt on member {m}", member=m))
            else:
                report.unrepairable.append((m, unit))
            return
        acc = self._zero
        for data in contents.values():
            acc = _xor(acc, data)
        if acc != self._zero:
            # Single parity detects the mismatch but cannot attribute it.
            pm = self._parity_member(unit)
            report.corruptions.append((pm, unit))
            report.unrepairable.append((pm, unit))
            self._detect(pm, unit, "member-mismatch", mechanism="redundancy")


class RDPDevice(ArrayDevice):
    """Row-Diagonal Parity over ``p + 1`` members (double erasure).

    Columns of the :class:`~repro.redundancy.rdp.RDPStripe` kernel map
    one-to-one onto members: ``p - 1`` data columns, the row-parity
    column (index ``p - 1``) and the diagonal-parity column (index
    ``p``).  Each stripe spans ``p - 1`` consecutive blocks per
    member.  Any two member erasures — including a fail-stop plus a
    latent sector error discovered mid-rebuild — reconstruct exactly.
    """

    kind = "rdp"

    def __init__(self, num_blocks: int, block_size: int = 4096,
                 p: int = 5, timing: Optional[dict] = None):
        self.stripe = RDPStripe(p, block_size)
        self.p = p
        self.rows = p - 1
        per_stripe = self.rows * self.rows  # data blocks per stripe
        stripes = -(-num_blocks // per_stripe)  # ceil
        super().__init__(num_blocks, block_size, p + 1,
                         stripes * self.rows, timing)
        self.stripes = stripes
        self._row_parity = p - 1
        self._diag_parity = p

    @property
    def scrub_units(self) -> int:
        return self.stripes

    def _locate(self, block: int) -> Tuple[int, int]:
        per_stripe = self.rows * self.rows
        stripe, rem = divmod(block, per_stripe)
        col, row = divmod(rem, self.rows)
        return col, stripe * self.rows + row

    def _read_columns(self, stripe: int,
                      logical: Optional[int] = None,
                      ) -> List[Optional[List[bytes]]]:
        base = stripe * self.rows
        columns: List[Optional[List[bytes]]] = []
        for col in range(self.p + 1):
            cells: Optional[List[bytes]] = []
            for row in range(self.rows):
                data = self._member_read(col, base + row, logical=logical)
                if data is None:
                    cells = None
                    break
                cells.append(data)
            columns.append(cells)
        return columns

    def _reconstruct(self, block: int, m: int, mb: int) -> bytes:
        stripe, row = divmod(mb, self.rows)
        columns = self._read_columns(stripe, logical=block)
        columns[m] = None  # the cell we are here for is untrusted
        try:
            full = self.stripe.reconstruct(columns)
        except ValueError:
            raise ReadError(
                block, "more than two member failures: RDP exhausted")
        return full[m][row]

    def _write_logical(self, block: int, data: bytes) -> None:
        col, mb = self._locate(block)
        stripe, row = divmod(mb, self.rows)
        old = self._member_read(col, mb, logical=block)
        if old is None:
            self._full_stripe_write(block, stripe, row, col, data)
            return
        delta = _xor(old, data)
        row_parity = self._member_read(self._row_parity, mb, logical=block)
        if row_parity is None:
            self._full_stripe_write(block, stripe, row, col, data)
            return
        updates: List[Tuple[int, int, bytes]] = [
            (col, mb, data),
            (self._row_parity, mb, _xor(row_parity, delta)),
        ]
        base = stripe * self.rows
        for d in ((row + col) % self.p, (row + self._row_parity) % self.p):
            if d == self.p - 1:
                continue  # the missing diagonal is not stored
            diag = self._member_read(self._diag_parity, base + d, logical=block)
            if diag is None:
                self._full_stripe_write(block, stripe, row, col, data)
                return
            updates.append((self._diag_parity, base + d, _xor(diag, delta)))
        landed = sum(1 for m, target, payload in updates
                     if self._member_write(m, target, payload))
        if landed == 0:
            raise WriteError(block, "array cannot store block")
        if (col, mb) in self._suspect:
            # The data cell itself failed but parity landed: the new
            # contents are recoverable through reconstruction.
            self.degraded_writes += 1
            self._emit(ArrayRecoveryEvent(
                Severity.WARNING, self._source(), "degraded-write",
                f"block {block} held by parity around member {col}",
                block, member=col))

    def _full_stripe_write(self, block: int, stripe: int, row: int,
                           col: int, data: bytes) -> None:
        columns = self._read_columns(stripe, logical=block)
        try:
            full = self.stripe.reconstruct(columns)
        except ValueError:
            raise WriteError(
                block, "more than two member failures: RDP exhausted")
        full[col][row] = data
        encoded = self.stripe.encode(full[:self.stripe.data_columns])
        base = stripe * self.rows
        failed_cols: Set[int] = set()
        for m in range(self.p + 1):
            for r in range(self.rows):
                if not self._member_write(m, base + r, encoded[m][r]):
                    failed_cols.add(m)
        if len(failed_cols) > 2:
            raise WriteError(block, "array cannot store block")
        if col in failed_cols:
            self.degraded_writes += 1
            self._emit(ArrayRecoveryEvent(
                Severity.WARNING, self._source(), "degraded-write",
                f"block {block} held by parity around member {col}",
                block, member=col))

    def _poke_logical(self, block: int, data: bytes) -> None:
        col, mb = self._locate(block)
        stripe, row = divmod(mb, self.rows)
        base = stripe * self.rows
        self.members[col].disk.poke(mb, data)
        self._suspect.discard((col, mb))
        # Recompute (not incrementally update) the affected parities
        # from raw member contents, so a poke also heals any prior
        # inconsistency in its row/diagonals.
        acc = self._zero
        for c in range(self.rows):  # data columns 0..p-2
            acc = _xor(acc, self.members[c].disk.peek(mb))
        self.members[self._row_parity].disk.poke(mb, acc)
        self._suspect.discard((self._row_parity, mb))
        for d in ((row + col) % self.p, (row + self._row_parity) % self.p):
            if d == self.p - 1:
                continue
            acc = self._zero
            for c in range(self.p):  # data + row-parity columns
                r = (d - c) % self.p
                if r <= self.rows - 1:
                    acc = _xor(acc, self.members[c].disk.peek(base + r))
            self.members[self._diag_parity].disk.poke(base + d, acc)
            self._suspect.discard((self._diag_parity, base + d))

    def _peek_logical(self, block: int) -> bytes:
        col, mb = self._locate(block)
        if self._trusted(col, mb):
            return self.members[col].disk.peek(mb)
        stripe, row = divmod(mb, self.rows)
        base = stripe * self.rows
        columns: List[Optional[List[bytes]]] = []
        erased = 0
        for c in range(self.p + 1):
            bad = c == col or c in self._stale or any(
                (c, base + r) in self._suspect for r in range(self.rows))
            if bad:
                columns.append(None)
                erased += 1
            else:
                columns.append([self.members[c].disk.peek(base + r)
                                for r in range(self.rows)])
        if erased > 2:
            return self.members[col].disk.peek(mb)
        return self.stripe.reconstruct(columns)[col][row]

    def _member_content(self, m: int, mb: int) -> Optional[bytes]:
        stripe, row = divmod(mb, self.rows)
        columns = self._read_columns(stripe)
        columns[m] = None
        try:
            full = self.stripe.reconstruct(columns)
        except ValueError:
            return None
        return full[m][row]

    def _scrub_unit(self, unit: int, report: ArrayScrubReport) -> None:
        base = unit * self.rows
        columns: List[Optional[List[bytes]]] = []
        missing: List[int] = []
        for col in range(self.p + 1):
            if col in self._stale:
                columns.append(None)
                missing.append(col)
                continue
            cells: Optional[List[bytes]] = []
            for row in range(self.rows):
                report.blocks_scanned += 1
                try:
                    cells.append(self.members[col].device.read_block(base + row))
                except ReadError:
                    report.latent_errors.append((col, base + row))
                    self._detect(col, base + row, "member-read-error")
                    cells = None
                    # Keep scanning the column for accounting, but the
                    # column is erased for reconstruction purposes.
                    break
            columns.append(cells)
            if cells is None and col not in missing:
                missing.append(col)
        if len(missing) > 2:
            for col in missing:
                for row in range(self.rows):
                    report.unrepairable.append((col, base + row))
            return
        if missing:
            try:
                full = self.stripe.reconstruct(columns)
            except ValueError:
                for col in missing:
                    for row in range(self.rows):
                        report.unrepairable.append((col, base + row))
                return
            for col in missing:
                for row in range(self.rows):
                    target = (col, base + row)
                    if self._member_write(col, base + row, full[col][row]):
                        report.repaired.append(target)
                    else:
                        report.unrepairable.append(target)
            self._emit(ArrayRecoveryEvent(
                Severity.INFO, self._source(), "scrub-repair",
                f"stripe {unit}: {len(missing)} columns rebuilt",
                member=missing[0]))
            return
        self._scrub_verify(unit, base, columns, report)

    def _scrub_verify(self, unit: int, base: int,
                      columns: List[List[bytes]],
                      report: ArrayScrubReport) -> None:
        """All columns readable: check parity syndromes and repair the
        single silently-corrupt block RDP can locate uniquely."""
        p, rows, bs = self.p, self.rows, self._block_size
        zero = self._zero
        row_syndrome: List[bytes] = []
        for r in range(rows):
            acc = zero
            for c in range(p):  # data + row parity
                acc = _xor(acc, columns[c][r])
            row_syndrome.append(acc)
        diag_syndrome: List[bytes] = []
        for d in range(rows):  # stored diagonals 0..p-2
            acc = columns[self._diag_parity][d]
            for c in range(p):
                r = (d - c) % p
                if r <= rows - 1:
                    acc = _xor(acc, columns[c][r])
            diag_syndrome.append(acc)
        bad_rows = [r for r in range(rows) if row_syndrome[r] != zero]
        bad_diags = [d for d in range(rows) if diag_syndrome[d] != zero]
        if not bad_rows and not bad_diags:
            return
        fix: Optional[Tuple[int, int, bytes]] = None  # (col, member block, delta)
        if len(bad_rows) == 1 and len(bad_diags) == 1:
            r0, d0 = bad_rows[0], bad_diags[0]
            c0 = (d0 - r0) % p
            if c0 <= p - 1 and row_syndrome[r0] == diag_syndrome[d0]:
                fix = (c0, base + r0, row_syndrome[r0])
        elif len(bad_rows) == 1 and not bad_diags:
            # The corrupt cell sits on the missing diagonal p-1.
            r0 = bad_rows[0]
            fix = ((p - 1 - r0) % p, base + r0, row_syndrome[r0])
        elif len(bad_diags) == 1 and not bad_rows:
            # The diagonal-parity block itself is corrupt.
            d0 = bad_diags[0]
            fix = (self._diag_parity, base + d0, diag_syndrome[d0])
        if fix is None:
            # Multiple corruptions: detected by redundancy, not locatable.
            self._detect(self._row_parity, base, "member-mismatch",
                         mechanism="redundancy")
            report.corruptions.append((self._row_parity, base))
            report.unrepairable.append((self._row_parity, base))
            return
        col, target, delta = fix
        report.corruptions.append((col, target))
        self._detect(col, target, "member-mismatch", mechanism="redundancy")
        current = columns[col][target - base]
        if self._member_write(col, target, _xor(current, delta)):
            report.repaired.append((col, target))
            self._emit(ArrayRecoveryEvent(
                Severity.INFO, self._source(), "scrub-repair",
                f"stripe {unit}: corrupt block healed on member {col}",
                member=col))
        else:
            report.unrepairable.append((col, target))


#: Geometry registry for declarative construction (adapters, CLI).
GEOMETRIES = ("mirror", "parity", "rdp")


def make_array(geometry: str, num_blocks: int, block_size: int = 4096,
               members: int = 2, **timing) -> ArrayDevice:
    """Build an array by geometry name.

    *members* means the member count for ``mirror`` and ``parity`` and
    the RDP prime ``p`` for ``rdp`` (which has ``p + 1`` members).
    """
    timing_dict = timing or None
    if geometry == "mirror":
        return MirrorDevice(num_blocks, block_size, copies=members,
                            timing=timing_dict)
    if geometry == "parity":
        return StripeParityDevice(num_blocks, block_size, members=members,
                                  timing=timing_dict)
    if geometry == "rdp":
        return RDPDevice(num_blocks, block_size, p=members,
                         timing=timing_dict)
    raise ValueError(f"unknown array geometry {geometry!r}")
