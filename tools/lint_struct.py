#!/usr/bin/env python3
"""Reject inline ``struct`` format strings in the source tree.

Every ``struct.pack("<II", ...)`` call re-parses its format string; on
the simulator's hot paths (inode probes, journal header scans, tree
node packing) that parse shows up directly in matrix wall-clock.  The
repo's rule is: formats compile once, at module import, into
``struct.Struct`` objects (or the shared ones in
``repro.common.structs``), and call sites use the compiled object's
``pack`` / ``unpack_from`` methods.

This linter walks the AST of every Python file under the given roots
and fails on:

* any call through the ``struct`` module — ``struct.pack``,
  ``struct.unpack``, ``struct.unpack_from``, ``struct.pack_into``,
  ``struct.iter_unpack``, ``struct.calcsize`` — since each re-parses
  its format argument;
* ``Struct(...)`` construction inside a function or method body, which
  re-compiles per call (module-level construction is the point).

Files may opt a line out with ``# lint-struct: ok`` (none currently
need to).

Usage::

    python tools/lint_struct.py src [more roots...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: repro.common.structs itself compiles formats (that is its job); its
#: lazily-compiled-and-cached helpers are the sanctioned exception.
ALLOWED = {Path("src/repro/common/structs.py")}

STRUCT_FUNCS = {
    "pack", "unpack", "pack_into", "unpack_from", "iter_unpack", "calcsize",
}


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.problems: list[str] = []
        self.depth = 0  # function-body nesting

    def _waived(self, node: ast.AST) -> bool:
        line = self.lines[node.lineno - 1]
        return "lint-struct: ok" in line

    def visit_FunctionDef(self, node):  # noqa: N802
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_Call(self, node):  # noqa: N802
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "struct"
                and func.attr in STRUCT_FUNCS
                and not self._waived(node)):
            self.problems.append(
                f"{self.path}:{node.lineno}: struct.{func.attr}() re-parses "
                f"its format string; precompile a module-level struct.Struct "
                f"(or use repro.common.structs)"
            )
        if (isinstance(func, ast.Name) and func.id == "Struct"
                and self.depth > 0 and not self._waived(node)):
            self.problems.append(
                f"{self.path}:{node.lineno}: Struct(...) inside a function "
                f"re-compiles per call; hoist it to module level"
            )
        self.generic_visit(node)


def lint(roots: list[str]) -> list[str]:
    problems: list[str] = []
    for root in roots:
        for path in sorted(Path(root).rglob("*.py")):
            if path in ALLOWED:
                continue
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                problems.append(f"{path}: unparseable: {exc}")
                continue
            checker = _Checker(path, source)
            checker.visit(tree)
            problems.extend(checker.problems)
    return problems


def main(argv: list[str]) -> int:
    roots = argv or ["src"]
    problems = lint(roots)
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} inline struct format site(s); see "
              f"tools/lint_struct.py for the rule", file=sys.stderr)
        return 1
    print(f"struct lint clean across {', '.join(roots)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
