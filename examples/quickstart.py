#!/usr/bin/env python3
"""Quickstart: mount a simulated ext3 volume, break it, then watch the
IRON version (ixt3) shrug off the same faults.

Run:  python examples/quickstart.py
"""

from repro.common.errors import FSError
from repro.disk import DeviceStack, corruption, make_disk, read_failure
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3


def populate(fs):
    fs.mkdir("/photos")
    fs.write_file("/photos/vacation.jpg", b"\x89JPG" + bytes(range(256)) * 40)
    fs.write_file("/taxes.txt", b"very important numbers\n" * 30)


def demo_ext3():
    print("=== ext3: trusts the disk ===")
    cfg = Ext3Config()  # a tiny volume; see Ext3Config for the knobs
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)

    fs = Ext3(disk)
    fs.mount()
    populate(fs)
    print("created", fs.getdirentries("/"), "-", fs.statfs().free_blocks, "blocks free")
    fs.unmount()

    # Remount behind a fault injector and fail the next inode read —
    # a latent sector error under the inode table.
    stack = DeviceStack(disk, inject=True)  # disk -> injector, one event stream
    injector = stack.injector
    fs = Ext3(stack)
    fs.mount()
    injector.set_type_oracle(fs.block_type)  # type-aware injection
    injector.arm(read_failure("inode"))
    try:
        fs.stat("/taxes.txt")
    except FSError as exc:
        print("stat after latent sector error:", exc.errno.name, "- data out of reach")

    # Silent corruption is worse: ext3 happily serves garbage.
    injector.clear_faults()
    injector.arm(corruption("data"))
    data = fs.read_file("/taxes.txt")
    print("read after silent corruption:",
          "garbage served without any error!" if b"important" not in data else "ok?")


def demo_ixt3():
    print()
    print("=== ixt3: doesn't trust the disk ===")
    base = Ext3Config()
    cfg = ixt3_config(base)
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ixt3(disk, base, config=cfg)  # all IRON features on

    fs = Ixt3(disk)
    fs.mount()
    populate(fs)
    fs.unmount()

    stack = DeviceStack(disk, inject=True)
    injector = stack.injector
    fs = Ixt3(stack)
    fs.mount()
    injector.set_type_oracle(fs.block_type)

    injector.arm(read_failure("inode"))
    st = fs.stat("/taxes.txt")
    print("stat after latent sector error: size =", st.size,
          "(recovered from the metadata replica)")

    injector.clear_faults()
    injector.arm(corruption("data"))
    data = fs.read_file("/taxes.txt")
    print("read after silent corruption:",
          "intact (checksum caught it, parity rebuilt it)"
          if b"important" in data else "garbage?!")

    for record in fs.syslog.records:
        if record.event in ("checksum-mismatch", "redundancy-used"):
            print("  syslog:", record.event, "-", record.message)


if __name__ == "__main__":
    demo_ext3()
    demo_ixt3()
