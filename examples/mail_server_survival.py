#!/usr/bin/env python3
"""A mail server riding out a decaying disk.

Runs a PostMark-style mail workload on ixt3 while latent sector errors
and silent corruptions accumulate underneath (the fail-partial model:
sticky block failures with spatial locality, plus misdirected-write
corruption).  A periodic scrub pass repairs damage from replicas and
parity before it can pile up past what one parity block per file can
absorb.

Run:  python examples/mail_server_survival.py
"""

import random

from repro.common.errors import FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    DeviceStack,
    FaultKind,
    FaultOp,
    make_disk,
)
from repro.fs.ext3 import Ext3Config
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3

RNG = random.Random(2026)
ROUNDS = 8
MAILS_PER_ROUND = 12


def main() -> None:
    base = Ext3Config(blocks_per_group=1024, inodes_per_group=128,
                      num_groups=2, journal_blocks=128)
    cfg = ixt3_config(base, dynamic_replica_slots=256)
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ixt3(disk, base, config=cfg)

    stack = DeviceStack(disk, inject=True)
    injector = stack.injector
    fs = Ixt3(stack)
    fs.mount()
    injector.set_type_oracle(fs.block_type)
    fs.mkdir("/spool")

    mailbox = {}
    delivered = served = recovered = 0

    for round_no in range(ROUNDS):
        # The disk decays: a small scratch lands somewhere in the data area.
        victim = RNG.randrange(cfg.groups_start, cfg.total_blocks - 4)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block=victim, locality_run=RNG.randrange(2)))
        if round_no % 3 == 2:
            injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                               block_type="data", corruption=CorruptionMode.NOISE))

        # Mail keeps arriving...
        for _ in range(MAILS_PER_ROUND):
            mid = f"msg{delivered:04d}"
            body = (f"From: sender{delivered}\n\n".encode()
                    + bytes(RNG.randrange(256) for _ in range(RNG.randrange(400, 3000))))
            fs.write_file(f"/spool/{mid}", body)
            mailbox[mid] = body
            delivered += 1

        # ...and being read back.
        for mid, body in RNG.sample(sorted(mailbox.items()), k=min(8, len(mailbox))):
            try:
                got = fs.read_file(f"/spool/{mid}")
            except FSError as exc:
                print(f"round {round_no}: LOST {mid}: {exc.errno.name}")
                continue
            served += 1
            assert got == body, f"round {round_no}: {mid} served corrupted!"

        # Nightly scrub: ixt3's own eager pass verifies checksums,
        # probes for latent errors, and repairs from replicas/parity.
        stats = fs.scrub()
        recovered += stats["repaired"]
        print(f"round {round_no}: {MAILS_PER_ROUND} delivered, "
              f"scrub repaired {stats['repaired']} "
              f"(latent={stats['latent']}, corrupt={stats['corrupt']}, "
              f"lost={stats['lost']})")

    print()
    print(f"survived {ROUNDS} rounds of disk decay: "
          f"{delivered} mails delivered, {served} reads served intact, "
          f"{recovered} redundancy recoveries, 0 messages lost or corrupted")


if __name__ == "__main__":
    main()
