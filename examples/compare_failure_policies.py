#!/usr/bin/env python3
"""Side-by-side failure policies: the same fault, four file systems.

For each of a handful of representative faults, runs the identical
scenario against ext3, ReiserFS, JFS and NTFS and prints what each one
did — the paper's §5.5 summary ("Overall simplicity", "First, do no
harm", "The kitchen sink", "Persistence is a virtue") as a live demo.

Run:  python examples/compare_failure_policies.py
"""

from repro.common.errors import FSError, KernelPanic
from repro.disk import (
    Fault,
    DeviceStack,
    FaultKind,
    FaultOp,
    Persistence,
    make_disk,
)
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.reiserfs import ReiserConfig, ReiserFS, mkfs_reiserfs

SYSTEMS = {
    "ext3": (Ext3, Ext3Config(ptrs_per_block=8), mkfs_ext3,
             {"meta": "inode", "data": "data"}),
    "reiserfs": (ReiserFS, ReiserConfig(), mkfs_reiserfs,
                 # With one file the whole tree is a single root leaf.
                 {"meta": "root", "data": "data"}),
    "jfs": (JFS, JFSConfig(), mkfs_jfs,
            {"meta": "inode", "data": "data"}),
    "ntfs": (NTFS, NTFSConfig(), mkfs_ntfs,
             {"meta": "MFT", "data": "data"}),
}


def fresh(name):
    fs_cls, cfg, mkfs, types = SYSTEMS[name]
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs(disk, cfg)
    fs = fs_cls(disk)
    fs.mount()
    fs.write_file("/file", b"the file contents " * 100)
    fs.unmount()
    stack = DeviceStack(disk, inject=True)
    fs = fs_cls(stack)
    fs.mount()
    stack.injector.set_type_oracle(fs.block_type)
    return stack.injector, fs, types


def outcome(action):
    try:
        action()
        return "succeeded"
    except KernelPanic as exc:
        return f"KERNEL PANIC ({exc.reason})"
    except FSError as exc:
        return f"error {exc.errno.name}"


def scenario(title, fault_builder, action_builder):
    print(f"--- {title} ---")
    for name in SYSTEMS:
        injector, fs, types = fresh(name)
        injector.arm(fault_builder(types))
        result = outcome(lambda: action_builder(fs))
        events = {r.event for r in fs.syslog.records} & {
            "read-error", "write-error", "read-retry", "write-retry",
            "sanity-fail", "remount-ro", "journal-abort", "silent-failure",
            "ignored-error", "redundancy-used", "unmountable",
        }
        extra = f"  [{', '.join(sorted(events))}]" if events else ""
        print(f"  {name:9} -> {result}{extra}")
    print()


def main() -> None:
    scenario(
        "sticky read failure on a metadata block",
        lambda t: Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type=t["meta"]),
        lambda fs: fs.stat("/file"),
    )
    scenario(
        "one transient read glitch on the same block",
        lambda t: Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type=t["meta"],
                        persistence=Persistence.TRANSIENT, transient_count=1),
        lambda fs: fs.stat("/file"),
    )
    scenario(
        "write failure while creating a file",
        lambda t: Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block_type=t["meta"]),
        lambda fs: fs.write_file("/new", b"x" * 2048),
    )
    scenario(
        "silent corruption of a metadata block",
        lambda t: Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block_type=t["meta"]),
        lambda fs: fs.stat("/file"),
    )


if __name__ == "__main__":
    main()
