#!/usr/bin/env python3
"""A tour of crash consistency in the simulated journaling stack.

Walks through the journal lifecycle step by step — commit, checkpoint,
power loss, replay — and then shows the transactional checksum (Tc)
refusing to replay a torn transaction that plain ext3 would happily
apply as garbage.

Run:  python examples/crash_consistency_tour.py
"""

from repro.disk import make_disk
from repro.fs.ext3 import Ext3, Ext3Config, fsck_ext3, mkfs_ext3
from repro.fs.ext3.journal import parse_desc
from repro.fs.ixt3 import FEAT_TXN_CSUM, Ixt3, ixt3_config, mkfs_ixt3


def banner(text):
    print()
    print(f"## {text}")


def tour_basic_journaling():
    banner("1. the journal makes committed work durable, uncommitted work vanish")
    cfg = Ext3Config()
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)
    fs = Ext3(disk, sync_mode=False)
    fs.mount()

    fs.write_file("/committed", b"this transaction reached the log")
    fs.journal.commit()  # in the journal, home locations still stale
    fs.write_file("/uncommitted", b"this one never did")
    fs.crash()  # power loss

    fs2 = Ext3(disk)
    fs2.mount()  # recovery replays the log
    print("after crash + replay:")
    print("  /committed   ->", fs2.read_file("/committed").decode())
    print("  /uncommitted ->", "exists" if fs2.exists("/uncommitted") else "gone (correct)")
    print("  syslog:", [r.message for r in fs2.syslog.records if r.event == "recovery"])
    fs2.unmount()
    print("  fsck:", "clean" if fsck_ext3(disk).clean else "DAMAGED")


def torn_transaction(disk, cfg, fs_cls, label):
    """Crash with a committed txn whose journaled copy then rots."""
    fs = fs_cls(disk)
    fs.mount()
    fs.write_file("/safe", b"previous generation")
    fs.crash_after(lambda f: f.write_file("/torn", b"mid-flight"))
    # One journaled copy is damaged at rest (a torn concurrent write or
    # latent corruption in the journal area).
    for pos in range(1, cfg.journal_blocks):
        if parse_desc(disk.peek(cfg.journal_start + pos)):
            disk.poke(cfg.journal_start + pos + 1, b"\xa5" * cfg.block_size)
            break
    fs2 = fs_cls(disk)
    fs2.mount()
    print(f"{label}:")
    print("  /safe ->", fs2.read_file("/safe").decode()
          if fs2.exists("/safe") else "MISSING")
    print("  /torn ->", "replayed" if fs2.exists("/torn") else "not replayed")
    caught = fs2.syslog.has_event("txn-checksum-mismatch")
    print("  torn transaction detected:", "yes" if caught else "no")
    fs2.unmount()
    report = fsck_ext3(disk)
    print("  fsck:", "clean" if report.clean else "DAMAGED -> " + report.messages[0])


def tour_torn_transactions():
    banner("2. plain ext3 replays a corrupted journal copy blindly")
    cfg = Ext3Config()
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)
    torn_transaction(disk, cfg, Ext3, "ext3 (no transactional checksum)")

    banner("3. ixt3's transactional checksum refuses the torn transaction")
    base = Ext3Config()
    icfg = ixt3_config(base)
    disk = make_disk(icfg.total_blocks, icfg.block_size)
    mkfs_ixt3(disk, base, features=FEAT_TXN_CSUM, config=icfg)
    torn_transaction(disk, icfg, Ixt3, "ixt3 (Tc enabled)")


def tour_repair():
    banner("4. and when damage does land, fsck puts the volume back together")
    cfg = Ext3Config()
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)
    fs = Ext3(disk)
    fs.mount()
    fs.write_file("/f", b"x" * 5000)
    fs.unmount()
    disk.poke(cfg.block_bitmap_block(0), b"\xff" * cfg.block_size)  # leak everything
    print("  before:", fsck_ext3(disk).render().splitlines()[0])
    fsck_ext3(disk, repair=True)
    print("  after repair:", fsck_ext3(disk).render())


if __name__ == "__main__":
    tour_basic_journaling()
    tour_torn_transactions()
    tour_repair()
