#!/usr/bin/env python3
"""Fingerprint a file system's failure policy, Figure-2 style.

Picks a file system (default ext3), runs the full type-aware fault
matrix against it, and prints the detection/recovery panels plus the
interesting inconsistencies the inference layer annotated.

Run:  python examples/fingerprint_a_filesystem.py [ext3|reiserfs|jfs|ntfs|ixt3]
"""

import sys

from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import ADAPTERS
from repro.taxonomy import render_full_figure


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ext3"
    if name not in ADAPTERS:
        raise SystemExit(f"unknown file system {name!r}; pick from {sorted(ADAPTERS)}")

    adapter = ADAPTERS[name]()
    fingerprinter = Fingerprinter(adapter, progress=lambda msg: print("  .", msg))
    print(f"fingerprinting {name} ...")
    matrix = fingerprinter.run()

    print()
    print(render_full_figure(matrix))
    print()
    print(f"{fingerprinter.tests_run} fault-injection tests run")

    covered, total = matrix.coverage()
    print(f"{covered}/{total} applicable cells show some detection or recovery")

    # Surface the paper's favourite pathologies: cells whose notes reveal
    # silent failures, fabricated data, or leaked space.
    print()
    print("noteworthy cells:")
    shown = 0
    for (fault_class, btype, workload), obs in sorted(matrix.cells.items()):
        tags = [n for n in obs.notes
                if "silent" in n or "fabricated" in n or "leaked" in n
                or "corrupt data" in n]
        if tags and shown < 12:
            print(f"  [{fault_class:13}] {btype:12} under {workload!r}: {tags[0]}")
            shown += 1
    if shown == 0:
        print("  (none — this file system has a well-defined failure policy)")


if __name__ == "__main__":
    main()
