"""Figure 2 (ext3 panels): the full failure-policy fingerprint of ext3.

Regenerates the detection and recovery matrices for read failures,
write failures, and corruption across every block type and workload,
and checks the headline §5.1 findings hold in the result.
"""

from conftest import record_bench_timing, run_once, save_result

from repro.bench.timing import fingerprint_record, timed
from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import make_ext3_adapter
from repro.taxonomy import Detection, Recovery, render_full_figure


def test_figure2_ext3(benchmark):
    fp = Fingerprinter(make_ext3_adapter())
    matrix, wall_s = timed(lambda: run_once(benchmark, fp.run))
    record_bench_timing("figure2_ext3", fingerprint_record(fp, matrix, wall_s))
    save_result("figure2_ext3", render_full_figure(matrix)
                + f"\n\ntests run: {fp.tests_run}")

    counts = matrix.technique_counts()

    # §5.1: reads are checked via error codes and mostly propagated.
    assert counts.get(Detection.ERROR_CODE, 0) > 30
    assert counts.get(Recovery.PROPAGATE, 0) > 30

    # §5.1: write errors are ignored — every write-failure cell is
    # D_zero/R_zero.
    write_cells = [obs for (fc, bt, wl), obs in matrix.cells.items()
                   if fc == "write-failure"]
    assert write_cells
    assert all(obs.is_zero() for obs in write_cells), \
        "ext3 checked a write error somewhere"

    # §5.1: some sanity checking, sparing retry, no redundancy.
    assert counts.get(Detection.SANITY, 0) > 5
    assert counts.get(Recovery.REDUNDANCY, 0) == 0
    assert counts.get(Recovery.RETRY, 0) >= 1

    # §5.1: read failures often abort the journal (R_stop).
    assert counts.get(Recovery.STOP, 0) > 10
