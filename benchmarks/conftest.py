"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.  The
interesting measurement is *virtual disk time* inside the simulator, so
pytest-benchmark wraps a single deterministic execution (pedantic mode)
and the regenerated artifact is written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def save_result(name: str, content: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def record_bench_timing(name: str, record: dict) -> pathlib.Path:
    """Merge one wall-clock record into BENCH_fingerprint.json at the
    repo root (see repro.bench.timing for the schema)."""
    from repro.bench.timing import record_entry

    return record_entry(name, record, path=REPO_ROOT / "BENCH_fingerprint.json")
