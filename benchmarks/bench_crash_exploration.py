"""Crash-state exploration: the §2.2 / §6.1 differential headline.

One exploration per file system over the `creat` workload.  The
regenerated artifact is the per-FS state/violation table — stock ext3's
torn-journal failures against ixt3+Tc's near-clean sheet — plus the
determinism witness (violation digests at two pool widths).
"""

from conftest import run_once, save_result

from repro.bench.timing import crash_record
from repro.common.pool import warm_pool
from repro.crash import CRASH_PROFILES, explore

FS_ORDER = ["ext3", "ixt3", "reiserfs", "jfs", "ntfs"]


def test_crash_exploration_matrix(benchmark):
    # Spawn the persistent workers outside the timed region so the
    # measurement covers exploration, not pool start-up.
    warm_pool(4)

    def sweep():
        out = {}
        for fs_key in FS_ORDER:
            report = explore(fs_key, "creat")
            out[fs_key] = crash_record(report, 0.0)
        # Determinism witness: the fan-out must not change the report.
        out["ext3_j4_digest"] = explore(
            "ext3", "creat", jobs=4).violation_digest()
        return out

    results = run_once(benchmark, sweep)

    lines = [f"{'FS':9} {'writes':>7} {'epochs':>7} {'states':>7} "
             f"{'violations':>11}  by oracle"]
    for fs_key in FS_ORDER:
        rec = results[fs_key]
        by_oracle = ", ".join(
            f"{k}={v}" for k, v in sorted(rec["violations_by_oracle"].items())
        ) or "-"
        lines.append(
            f"{fs_key:9} {rec['writes']:>7} {rec['epochs']:>7} "
            f"{rec['states_explored']:>7} {rec['violations']:>11}  {by_oracle}"
        )
    save_result("crash_exploration", "\n".join(lines))

    assert set(results) - {"ext3_j4_digest"} == set(CRASH_PROFILES)
    ext3, ixt3 = results["ext3"], results["ixt3"]
    # The acceptance triangle: enough states, a real ext3 failure mode,
    # and Tc closing the window ext3 leaves open.
    assert ext3["states_explored"] >= 50
    assert ext3["violations"] > 0
    assert ixt3["violations"] < ext3["violations"]
    # Identical digest at jobs=1 and jobs=4.
    assert results["ext3_j4_digest"] == ext3["violation_digest"]
