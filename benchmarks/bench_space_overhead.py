"""§6.2 space overheads: checksums + metadata replication should cost
3-10% of used space, per-file parity 3-17% depending on the volume's
file-size mix."""

from conftest import run_once, save_result

from repro.bench.paperdata import PAPER_SPACE_META_RANGE, PAPER_SPACE_PARITY_RANGE
from repro.bench.space import analyze_all, render


def test_space_overhead(benchmark):
    results = run_once(benchmark, analyze_all)
    save_result("space_overhead", render(results))

    meta = [r.meta_redundancy_fraction for r in results]
    parity = [r.parity_fraction for r in results]

    lo, hi = PAPER_SPACE_META_RANGE
    assert min(meta) >= lo - 0.01 and max(meta) <= hi + 0.01, meta

    lo, hi = PAPER_SPACE_PARITY_RANGE
    assert max(parity) <= hi + 0.01, parity
    # Small-file volumes sit high in the parity range, large-file ones low.
    by_mean = sorted(results, key=lambda r: r.data_blocks / max(r.parity_blocks, 1))
    assert by_mean[0].parity_fraction > by_mean[-1].parity_fraction
