"""Table 6: run time of all 32 ixt3 variants under SSH-Build, Web
server, PostMark and TPC-B, normalized to the no-feature baseline, with
the paper's numbers printed alongside.

Absolute numbers come from the simulator's virtual disk clock; the
claims checked are the paper's *shape* claims (§6.2):

1. SSH-Build and the web server see little overhead even with every
   IRON technique enabled.
2. Metadata replication (Mr) and data checksumming (Dc) carry the
   noticeable costs on the metadata-intensive workloads.
3. Metadata checksums (Mc) and user parity (Dp) are cheap.
4. The transactional checksum (Tc) *speeds up* the synchronous TPC-B
   workload by roughly 20%, and substantially reduces the all-features
   overhead.
"""

from conftest import record_bench_timing, run_once, save_result

from repro.bench.harness import run_table6
from repro.bench.paperdata import VARIANT_ORDER
from repro.bench.timing import table6_record, timed


def _row(run, bench, features):
    return run.normalized(bench)[VARIANT_ORDER.index(features)]


def test_table6_overheads(benchmark):
    run, wall_s = timed(lambda: run_once(benchmark, run_table6))
    record_bench_timing("table6_overheads", table6_record(run, wall_s))
    save_result("table6_overheads", run.render())

    # 1. SSH / Web: little overhead even with everything on.
    assert _row(run, "SSH", ("Mc", "Mr", "Dc", "Dp", "Tc")) < 1.10
    assert all(abs(x - 1.0) < 0.03 for x in run.normalized("Web"))

    # 2. Mr is a noticeable cost on PostMark and TPC-B.
    assert _row(run, "Post", ("Mr",)) > 1.08
    assert _row(run, "TPCB", ("Mr",)) > 1.08

    # 3. Mc and Dp are cheap on SSH-Build and TPC-B.
    assert _row(run, "SSH", ("Mc",)) < 1.05
    assert _row(run, "TPCB", ("Mc",)) < 1.05
    assert _row(run, "TPCB", ("Dp",)) < 1.15

    # 4. Tc speeds up TPC-B by roughly 20% alone...
    tc = _row(run, "TPCB", ("Tc",))
    assert 0.70 <= tc <= 0.90, f"Tc speedup out of range: {tc}"
    # ...and pulls the all-features overhead well below the Tc-less one.
    all4 = _row(run, "TPCB", ("Mc", "Mr", "Dc", "Dp"))
    all5 = _row(run, "TPCB", ("Mc", "Mr", "Dc", "Dp", "Tc"))
    assert all5 < all4 - 0.10

    # Overheads compose roughly monotonically: every variant costs at
    # least (nearly) as much as the baseline unless it includes Tc.
    for bench in ("SSH", "Post"):
        for i, features in enumerate(VARIANT_ORDER):
            if "Tc" in features:
                continue
            assert run.normalized(bench)[i] > 0.97
