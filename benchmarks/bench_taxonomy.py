"""Regenerate the paper's static tables: the IRON detection and
recovery taxonomies (Tables 1-2), the workload suite (Table 3), and the
per-file-system block-type inventories (Table 4) — the latter derived
from the implementations, not hand-written."""

from conftest import run_once, save_result

from repro.fingerprint.workloads import render_workload_table
from repro.fs.ext3 import Ext3
from repro.fs.jfs import JFS
from repro.fs.ntfs import NTFS
from repro.fs.reiserfs import ReiserFS
from repro.taxonomy import render_detection_table, render_recovery_table


def test_table1_detection_taxonomy(benchmark):
    table = run_once(benchmark, render_detection_table)
    save_result("table1_detection", table)
    assert "D_errorcode" in table and "D_redundancy" in table


def test_table2_recovery_taxonomy(benchmark):
    table = run_once(benchmark, render_recovery_table)
    save_result("table2_recovery", table)
    assert "R_retry" in table and "R_redundancy" in table


def test_table3_workloads(benchmark):
    table = run_once(benchmark, render_workload_table)
    save_result("table3_workloads", table)
    assert "Exercise the Posix API" in table
    assert "Invoke recovery" in table


def test_table4_block_types(benchmark):
    def build():
        sections = []
        for fs_cls in (Ext3, ReiserFS, JFS, NTFS):
            lines = [f"{fs_cls.name} structures:"]
            for name, purpose in fs_cls.BLOCK_TYPES.items():
                lines.append(f"  {name:14} {purpose}")
            sections.append("\n".join(lines))
        return "\n\n".join(sections)

    table = run_once(benchmark, build)
    save_result("table4_block_types", table)
    # The paper's headline structures all appear.
    for marker in ("indirect", "journal", "MFT", "aggr", "stat item"):
        assert marker.lower() in table.lower()
