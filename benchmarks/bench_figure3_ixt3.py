"""Figure 3: the ixt3 failure-policy fingerprint with every IRON
feature enabled, plus the §6.2 robustness count ("detects and recovers
from over 200 possible different partial-error scenarios")."""

from conftest import record_bench_timing, run_once, save_result

from repro.bench.paperdata import PAPER_IXT3_SCENARIOS
from repro.bench.timing import fingerprint_record, timed
from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import make_ixt3_adapter
from repro.taxonomy import Detection, Recovery, render_full_figure


def test_figure3_ixt3(benchmark):
    fp = Fingerprinter(make_ixt3_adapter())
    matrix, wall_s = timed(lambda: run_once(benchmark, fp.run))
    record_bench_timing("figure3_ixt3", fingerprint_record(fp, matrix, wall_s))

    counts = matrix.technique_counts()
    covered, total = matrix.coverage()
    handled = sum(
        1 for obs in matrix.cells.values()
        if (Recovery.REDUNDANCY in obs.recovery
            or Recovery.PROPAGATE in obs.recovery
            or Recovery.STOP in obs.recovery
            or Recovery.RETRY in obs.recovery)
    )
    summary = [
        render_full_figure(matrix),
        "",
        f"tests run: {fp.tests_run}",
        f"cells with a defined policy: {covered}/{total}",
        f"scenarios detected and handled: {handled} "
        f"(paper: over {PAPER_IXT3_SCENARIOS})",
        f"R_redundancy cells: {counts.get(Recovery.REDUNDANCY, 0)}",
        f"D_redundancy (checksum) cells: {counts.get(Detection.REDUNDANCY, 0)}",
    ]
    save_result("figure3_ixt3", "\n".join(summary))

    # §6.2: over 200 induced partial-error scenarios detected + handled.
    assert handled > PAPER_IXT3_SCENARIOS

    # §6.2: checksums detect corruption (D_redundancy), replicas and
    # parity recover lost blocks (R_redundancy).
    assert counts.get(Detection.REDUNDANCY, 0) > 30
    assert counts.get(Recovery.REDUNDANCY, 0) > 60

    # Write failures stop the file system instead of being ignored.
    write_cells = [obs for (fc, bt, wl), obs in matrix.cells.items()
                   if fc == "write-failure"]
    stops = sum(1 for obs in write_cells if Recovery.STOP in obs.recovery)
    assert write_cells and stops / len(write_cells) > 0.8

    # A well-defined failure policy: almost no Zero cells remain.
    zero = sum(1 for obs in matrix.cells.values() if obs.is_zero())
    assert zero / total < 0.10
