"""Ablation: replica placement vs spatially-local faults.

§3.3 warns that in-disk replicas must account for spatial locality —
a media scratch takes out *neighbouring* blocks.  §5.6 calls out JFS
for keeping its secondary superblock adjacent to the primary.  The
ablation sweeps the scratch length: JFS's adjacent copies die together
from length 2 on, while ixt3's distant replicas keep recovering.
"""

import pytest
from conftest import run_once, save_result

from repro.common.errors import FSError
from repro.disk import DeviceStack, Fault, FaultKind, FaultOp, make_disk
from repro.fs.ext3 import Ext3Config
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs

IXT3_BASE = Ext3Config(ptrs_per_block=8)
IXT3_CFG = ixt3_config(IXT3_BASE)
JFS_CFG = JFSConfig()


def jfs_mount_survives(scratch_len: int) -> bool:
    """Scratch starting at the primary superblock; does the mount live?"""
    stack = DeviceStack.build(JFS_CFG.total_blocks, JFS_CFG.block_size, inject=True)
    mkfs_jfs(stack.disk, JFS_CFG)
    injector = stack.injector
    injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=0,
                       locality_run=scratch_len - 1))
    fs = JFS(stack)
    try:
        fs.mount()
        return True
    except FSError:
        return False


def ixt3_read_survives(scratch_len: int) -> bool:
    """Scratch across an inode-table block; does a stat still work?"""
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
    fs = Ixt3(disk)
    fs.mount()
    fs.write_file("/victim", b"important")
    fs.unmount()
    inode_block = IXT3_CFG.inode_table_start(0)
    stack = DeviceStack(disk, inject=True)
    stack.injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=inode_block,
                             locality_run=scratch_len - 1))
    fs2 = Ixt3(stack)
    fs2.mount()
    try:
        return fs2.stat("/victim").size == 9
    except FSError:
        return False


def test_ablation_replica_placement(benchmark):
    def sweep():
        rows = []
        for scratch in (1, 2, 4, 8):
            rows.append((scratch, jfs_mount_survives(scratch),
                         ixt3_read_survives(scratch)))
        return rows

    rows = run_once(benchmark, sweep)
    lines = [f"{'scratch':>8} {'JFS adjacent copies':>20} {'ixt3 distant replicas':>22}"]
    for scratch, jfs_ok, ixt3_ok in rows:
        lines.append(f"{scratch:>8} {'survives' if jfs_ok else 'DEAD':>20} "
                     f"{'survives' if ixt3_ok else 'DEAD':>22}")
    save_result("ablation_replica_placement", "\n".join(lines))

    by_len = {r[0]: r for r in rows}
    # A one-block error: both recover (JFS reads the secondary).
    assert by_len[1][1] and by_len[1][2]
    # A two-block scratch kills JFS's adjacent copies...
    assert not by_len[2][1]
    # ...while ixt3's distant replicas survive every scratch length.
    assert all(r[2] for r in rows)
