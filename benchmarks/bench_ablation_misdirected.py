"""Ablation: sanity checking vs. checksums under misdirected writes.

§5.6: "modern disk failure modes such as misdirected and phantom
writes lead to cases where the file system could receive a properly
formatted (but incorrect) block; the bad block thus passes sanity
checks, is used, and can corrupt the file system.  Indeed, all file
systems we tested exhibit this behavior."

The experiment emulates the quintessential misdirected write: a read
of block A returns the (perfectly well-formed) contents of another
block B of the same type.  Every commodity system accepts the impostor
block silently; ixt3's location-indexed checksums — stored *distant*
from the data they cover (§6.1) — catch it and recover from the
replica.
"""

from conftest import run_once, save_result

from repro.common.errors import FSError, KernelPanic
from repro.disk import CorruptionMode, DeviceStack, Fault, FaultKind, FaultOp, make_disk
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.reiserfs import ReiserConfig, ReiserFS, mkfs_reiserfs

IXT3_BASE = Ext3Config(ptrs_per_block=8)
IXT3_CFG = ixt3_config(IXT3_BASE)


def impostor_fault(disk, fs, target_type):
    """A misdirected write: reading a block of *target_type* returns the
    contents of a different, well-formed block of the same type."""
    same_type = [b for b in range(disk.num_blocks)
                 if fs.block_type(b) == target_type]

    def corruptor(payload, btype):
        for candidate in same_type:
            other = disk.peek(candidate)
            if other != payload:
                return other
        return payload

    return Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                 block_type=target_type,
                 corruption=CorruptionMode.FIELD, corruptor=corruptor)


def build(kind):
    if kind == "ixt3":
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
        cls = Ixt3
    elif kind == "ext3":
        cfg = Ext3Config(ptrs_per_block=8)
        disk = make_disk(cfg.total_blocks, cfg.block_size)
        mkfs_ext3(disk, cfg)
        cls = Ext3
    elif kind == "reiserfs":
        cfg = ReiserConfig()
        disk = make_disk(cfg.total_blocks, cfg.block_size)
        mkfs_reiserfs(disk, cfg)
        cls = ReiserFS
    elif kind == "jfs":
        cfg = JFSConfig()
        disk = make_disk(cfg.total_blocks, cfg.block_size)
        mkfs_jfs(disk, cfg)
        cls = JFS
    else:
        cfg = NTFSConfig()
        disk = make_disk(cfg.total_blocks, cfg.block_size)
        mkfs_ntfs(disk, cfg)
        cls = NTFS
    fs = cls(disk)
    fs.mount()
    # Two files whose metadata lives in *different* blocks of the same
    # type, so an impostor block exists.
    fs.mkdir("/d")
    for i in range(30):
        fs.write_file(f"/d/file{i:02d}", f"contents of file {i}".encode() * 8)
    fs.unmount()
    stack = DeviceStack(disk, inject=True)
    fs = cls(stack)
    fs.mount()
    stack.injector.set_type_oracle(fs.block_type)
    return disk, stack.injector, fs


META_TYPE = {"ext3": "inode", "reiserfs": "stat item", "jfs": "inode",
             "ntfs": "MFT", "ixt3": "inode"}


def probe(kind):
    """Returns (outcome, detected): what happened when the misdirected
    block was consumed, and whether the FS explicitly detected it."""
    disk, injector, fs = build(kind)
    fault = impostor_fault(disk, fs, META_TYPE[kind])
    injector.arm(fault)
    try:
        fs.stat("/d/file00")
    except KernelPanic:
        return "panic", True
    except FSError as exc:
        detected = fs.syslog.has_event("checksum-mismatch") or \
            fs.syslog.has_event("sanity-fail")
        return f"error {exc.errno.name}", detected
    detected = fs.syslog.has_event("checksum-mismatch")
    recovered = fs.syslog.has_event("redundancy-used")
    try:
        body = fs.read_file("/d/file00")
    except FSError:
        return "late error", detected
    right = body == b"contents of file 0" * 8
    if right and recovered:
        return "served correct data (recovered)", True
    if right:
        return "served correct data", detected
    return "served WRONG data silently", detected


def test_ablation_misdirected_writes(benchmark):
    def sweep():
        return {kind: probe(kind)
                for kind in ("ext3", "reiserfs", "jfs", "ntfs", "ixt3")}

    results = run_once(benchmark, sweep)
    lines = [f"{'system':>9}  {'outcome':36} detected?"]
    for kind, (outcome, detected) in results.items():
        lines.append(f"{kind:>9}  {outcome:36} {'yes' if detected else 'NO'}")
    lines.append("")
    lines.append("misdirected write = a well-formed block of the right type,")
    lines.append("but the wrong one; only end-to-end checksums catch it (§5.6)")
    save_result("ablation_misdirected", "\n".join(lines))

    # Every commodity system consumes the impostor without an explicit
    # corruption detection...
    for kind in ("ext3", "reiserfs", "jfs", "ntfs"):
        outcome, detected = results[kind]
        assert not detected, f"{kind} should not detect a misdirected write"
    # ...while ixt3's checksums catch it and its replicas recover.
    outcome, detected = results["ixt3"]
    assert detected
    assert "recovered" in outcome or "correct" in outcome
