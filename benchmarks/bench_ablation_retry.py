"""Ablation: retry policy vs transient-fault duration.

§5.6: "retry is underutilized ... NTFS is the lone file system that
embraces retry."  The ablation sweeps how many consecutive attempts a
transient fault eats and measures which systems still serve the read:
ext3 (no retries) dies immediately, ReiserFS/JFS (one retry) survive a
single glitch, NTFS (seven attempts) rides out long outages.
"""

from conftest import run_once, save_result

from repro.common.errors import FSError, KernelPanic
from repro.disk import DeviceStack, Fault, FaultKind, FaultOp, Persistence, make_disk
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.reiserfs import ReiserConfig, ReiserFS, mkfs_reiserfs

SYSTEMS = {
    "ext3": (Ext3, Ext3Config(ptrs_per_block=8), mkfs_ext3, "inode"),
    "reiserfs": (ReiserFS, ReiserConfig(), mkfs_reiserfs, "data"),
    "jfs": (JFS, JFSConfig(), mkfs_jfs, "inode"),
    "ntfs": (NTFS, NTFSConfig(), mkfs_ntfs, "MFT"),
}


def survives(name: str, transient_len: int) -> bool:
    fs_cls, cfg, mkfs, target_type = SYSTEMS[name]
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs(disk, cfg)
    fs = fs_cls(disk)
    fs.mount()
    fs.write_file("/f", b"contents here! " * 200)
    fs.unmount()
    stack = DeviceStack(disk, inject=True)
    injector = stack.injector
    fs2 = fs_cls(stack)
    fs2.mount()
    injector.set_type_oracle(fs2.block_type)
    injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                       block_type=target_type,
                       persistence=Persistence.TRANSIENT,
                       transient_count=transient_len))
    try:
        return fs2.read_file("/f") == b"contents here! " * 200
    except (FSError, KernelPanic):
        return False


def test_ablation_retry(benchmark):
    def sweep():
        table = {}
        for name in SYSTEMS:
            table[name] = [survives(name, n) for n in (1, 2, 3, 6, 7)]
        return table

    table = run_once(benchmark, sweep)
    lines = [f"{'system':>9} " + " ".join(f"{n:>5}" for n in (1, 2, 3, 6, 7))]
    for name, row in table.items():
        lines.append(f"{name:>9} " + " ".join(
            f"{'ok' if ok else 'FAIL':>5}" for ok in row))
    lines.append("(columns: consecutive failed attempts before the fault clears)")
    save_result("ablation_retry", "\n".join(lines))

    # ext3 never retries metadata reads: even one glitch is fatal.
    assert table["ext3"] == [False, False, False, False, False]
    # ReiserFS and JFS absorb exactly one glitch.
    assert table["reiserfs"][0] and not table["reiserfs"][1]
    assert table["jfs"][0] and not table["jfs"][1]
    # NTFS rides out six failures and succumbs only at seven.
    assert table["ntfs"][3] and not table["ntfs"][4]
