"""Table 5: the IRON-technique usage summary across ext3, ReiserFS and
JFS, aggregated from fresh Figure-2 fingerprints and rendered as the
paper's relative-frequency check marks."""

from conftest import run_once, save_result

from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import (
    make_ext3_adapter,
    make_jfs_adapter,
    make_reiserfs_adapter,
)
from repro.taxonomy import Detection, Recovery, relative_frequency_marks

LEVELS = [
    Detection.ZERO, Detection.ERROR_CODE, Detection.SANITY, Detection.REDUNDANCY,
    Recovery.ZERO, Recovery.PROPAGATE, Recovery.STOP, Recovery.GUESS,
    Recovery.RETRY, Recovery.REPAIR, Recovery.REMAP, Recovery.REDUNDANCY,
]


def test_table5_summary(benchmark):
    def build():
        marks = {}
        for make in (make_ext3_adapter, make_reiserfs_adapter, make_jfs_adapter):
            fp = Fingerprinter(make())
            matrix = fp.run()
            covered, total = matrix.coverage()
            marks[matrix.fs_name] = (
                relative_frequency_marks(matrix.technique_counts(), total),
                covered, total,
            )
        return marks

    marks = run_once(benchmark, build)

    lines = [f"{'Level':16} {'ext3':>8} {'Reiser':>8} {'JFS':>8}"]
    for level in LEVELS:
        row = f"{level.value:16}"
        for fs in ("ext3", "reiserfs", "jfs"):
            row += f" {marks[fs][0].get(level, ''):>8}"
        lines.append(row)
    lines.append("")
    for fs in ("ext3", "reiserfs", "jfs"):
        _, covered, total = marks[fs]
        lines.append(f"{fs}: {covered}/{total} applicable cells show any policy")
    table = "\n".join(lines)
    save_result("table5_summary", table)

    ext3_m, reiser_m, jfs_m = (marks[f][0] for f in ("ext3", "reiserfs", "jfs"))

    # Paper's check-mark pattern, qualitatively:
    # ext3 has notable D_zero (ignored writes); ReiserFS almost none.
    assert ext3_m.get(Detection.ZERO)
    assert len(reiser_m.get(Detection.ZERO, "")) <= len(ext3_m.get(Detection.ZERO, ""))
    # ReiserFS leads in sanity checking and R_stop.
    assert len(reiser_m.get(Detection.SANITY, "")) >= len(ext3_m.get(Detection.SANITY, ""))
    assert reiser_m.get(Recovery.STOP)
    # Only JFS shows any R_redundancy; nobody repairs or remaps.
    assert jfs_m.get(Recovery.REDUNDANCY)
    assert not ext3_m.get(Recovery.REDUNDANCY)
    assert not reiser_m.get(Recovery.REDUNDANCY)
    for m in (ext3_m, reiser_m, jfs_m):
        assert not m.get(Recovery.REPAIR)
        assert not m.get(Recovery.REMAP)
