"""§5.4: the (partial) NTFS study — persistence is a virtue.

The paper has no NTFS panel in Figure 2 (closed-source; analysis
incomplete), so this regenerates the qualitative findings: aggressive
retry counts, strong metadata sanity checking, reliable propagation,
and the recorded-but-unused data write error."""

from conftest import run_once, save_result

from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import make_ntfs_adapter
from repro.taxonomy import Detection, Recovery, render_full_figure


def test_ntfs_study(benchmark):
    fp = Fingerprinter(make_ntfs_adapter())
    matrix = run_once(benchmark, fp.run)

    counts = matrix.technique_counts()
    summary = [
        render_full_figure(matrix),
        "",
        f"tests run: {fp.tests_run}",
        f"retry cells: {counts.get(Recovery.RETRY, 0)}",
        f"propagate cells: {counts.get(Recovery.PROPAGATE, 0)}",
        f"sanity cells: {counts.get(Detection.SANITY, 0)}",
    ]
    save_result("ntfs_study", "\n".join(summary))

    # §5.4: NTFS is the lone system that embraces retry.
    assert counts.get(Recovery.RETRY, 0) > 50

    # §5.4: it propagates errors to the user quite reliably.
    assert counts.get(Recovery.PROPAGATE, 0) > 30

    # §5.4: strong sanity checking on metadata.
    assert counts.get(Detection.SANITY, 0) > 10

    # §5.4: data write errors are retried, then recorded but not used —
    # never propagated, never fatal.
    data_writes = [
        obs for (fc, bt, wl), obs in matrix.cells.items()
        if fc == "write-failure" and bt == "data"
    ]
    assert data_writes
    for obs in data_writes:
        assert Recovery.PROPAGATE not in obs.recovery
        assert Recovery.STOP not in obs.recovery
