"""Ablation: the transactional checksum (Tc).

§6.1 argues Tc removes the pre-commit ordering wait, whose cost is
rotational.  The ablation varies the simulated drive's rotation speed:
the Tc speedup on the synchronous TPC-B workload must grow with the
rotational period (slower drives wait longer), and vanish as rotation
becomes free — confirming the mechanism, not just the number.
"""

from conftest import run_once, save_result

from repro.bench.harness import BENCH_BASE_CONFIG, CACHE_BLOCKS, features_mask
from repro.bench.workloads import BENCHMARKS, BenchScale
from repro.disk.disk import SimulatedDisk
from repro.disk.stack import DeviceStack
from repro.disk.geometry import DiskGeometry
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3

RPMS = {"15k rpm": 4.0e-3, "7200 rpm": 8.33e-3, "5400 rpm": 11.1e-3}


def run_tpcb(rotation_s: float, tc: bool) -> float:
    cfg = ixt3_config(BENCH_BASE_CONFIG, dynamic_replica_slots=512)
    stack = DeviceStack(
        SimulatedDisk(DiskGeometry(
            num_blocks=cfg.total_blocks, block_size=cfg.block_size,
            rotation_s=rotation_s)),
        cache_blocks=CACHE_BLOCKS)
    disk = stack.disk
    mkfs_ixt3(disk, BENCH_BASE_CONFIG,
              features=features_mask(("Tc",) if tc else ()), config=cfg)
    fs = Ixt3(stack, sync_mode=False, commit_every=256)
    fs.mount()
    t0 = disk.clock
    BENCHMARKS["TPCB"]["run"](fs, BenchScale(tpcb_txns=120))
    fs.unmount()
    return disk.clock - t0


def test_ablation_txn_checksum(benchmark):
    def sweep():
        out = {}
        for label, rot in RPMS.items():
            base = run_tpcb(rot, tc=False)
            with_tc = run_tpcb(rot, tc=True)
            out[label] = (base, with_tc, with_tc / base)
        return out

    results = run_once(benchmark, sweep)
    lines = [f"{'Drive':10} {'base (s)':>10} {'Tc (s)':>10} {'ratio':>7}"]
    for label, (base, with_tc, ratio) in results.items():
        lines.append(f"{label:10} {base:>10.3f} {with_tc:>10.3f} {ratio:>7.2f}")
    save_result("ablation_txn_checksum", "\n".join(lines))

    # Tc always helps the synchronous workload...
    for base, with_tc, ratio in results.values():
        assert ratio < 1.0
    # ...and helps *more* on slower-rotating drives.
    ratios = [results[k][2] for k in ("15k rpm", "7200 rpm", "5400 rpm")]
    assert ratios[0] > ratios[1] > ratios[2]
