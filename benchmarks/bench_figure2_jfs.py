"""Figure 2 (JFS panels): the full fingerprint of JFS — "the kitchen
sink" — with §5.3's findings asserted on the result."""

from conftest import record_bench_timing, run_once, save_result

from repro.bench.timing import fingerprint_record, timed
from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import make_jfs_adapter
from repro.taxonomy import Detection, Recovery, render_full_figure


def test_figure2_jfs(benchmark):
    fp = Fingerprinter(make_jfs_adapter())
    matrix, wall_s = timed(lambda: run_once(benchmark, fp.run))
    record_bench_timing("figure2_jfs", fingerprint_record(fp, matrix, wall_s))
    save_result("figure2_jfs", render_full_figure(matrix)
                + f"\n\ntests run: {fp.tests_run}")

    counts = matrix.technique_counts()

    # §5.3: the generic layer's single retry shows up widely.
    assert counts.get(Recovery.RETRY, 0) > 10

    # §5.3: JFS uses *every* strategy somewhere — the kitchen sink.
    for level in (Detection.ERROR_CODE, Detection.SANITY, Detection.ZERO,
                  Recovery.PROPAGATE, Recovery.STOP, Recovery.ZERO):
        assert counts.get(level, 0) > 0, f"JFS should exhibit {level}"

    # §5.3: the secondary superblock gives JFS the study's only
    # commodity-FS use of redundancy.
    assert counts.get(Recovery.REDUNDANCY, 0) >= 1

    # §5.3: most write errors are ignored.
    write_cells = [obs for (fc, bt, wl), obs in matrix.cells.items()
                   if fc == "write-failure"]
    zero = sum(1 for obs in write_cells if obs.is_zero())
    assert write_cells and zero / len(write_cells) > 0.5

    # §5.3: allocation-map read failures crash the system (the one
    # exception is journal replay, which skips unreadable targets).
    crash_cells = [
        obs for (fc, bt, wl), obs in matrix.cells.items()
        if fc == "read-failure" and bt in ("bmap", "imap")
    ]
    assert crash_cells
    stops = sum(1 for obs in crash_cells if Recovery.STOP in obs.recovery)
    assert stops / len(crash_cells) >= 0.8
