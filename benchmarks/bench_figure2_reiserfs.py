"""Figure 2 (ReiserFS panels): the full fingerprint of ReiserFS, with
§5.2's headline findings asserted on the result."""

from conftest import record_bench_timing, run_once, save_result

from repro.bench.timing import fingerprint_record, timed
from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import make_reiserfs_adapter
from repro.taxonomy import Detection, Recovery, render_full_figure


def test_figure2_reiserfs(benchmark):
    fp = Fingerprinter(make_reiserfs_adapter())
    matrix, wall_s = timed(lambda: run_once(benchmark, fp.run))
    record_bench_timing("figure2_reiserfs", fingerprint_record(fp, matrix, wall_s))
    save_result("figure2_reiserfs", render_full_figure(matrix)
                + f"\n\ntests run: {fp.tests_run}")

    counts = matrix.technique_counts()

    # §5.2: error codes checked across reads AND writes.
    assert counts.get(Detection.ERROR_CODE, 0) > 100

    # §5.2: "first, do no harm" — write failures overwhelmingly panic.
    write_cells = [obs for (fc, bt, wl), obs in matrix.cells.items()
                   if fc == "write-failure"]
    stops = sum(1 for obs in write_cells if Recovery.STOP in obs.recovery)
    assert write_cells
    assert stops / len(write_cells) > 0.8, "ReiserFS must panic on most write failures"

    # §5.2: the ordered-data-write exception exists (R_zero cells among
    # the write failures).
    zero_writes = [
        (bt, wl) for (fc, bt, wl), obs in matrix.cells.items()
        if fc == "write-failure" and obs.is_zero()
    ]
    assert any(bt == "data" for bt, _ in zero_writes), \
        "the ordered data-write bug should appear as R_zero for data"

    # §5.2: heavy sanity checking (tree block headers, magic numbers).
    assert counts.get(Detection.SANITY, 0) > 30

    # §5.2: a single retry exists for data reads; no redundancy at all.
    assert counts.get(Recovery.RETRY, 0) >= 1
    assert counts.get(Recovery.REDUNDANCY, 0) == 0
