"""Microbenchmarks of the zero-copy block substrate.

Times the primitive operations every harness loop is built from —
block reads and writes, snapshot/restore cycles, golden-image restores
— on both the slab :class:`SimulatedDisk` and the pre-slab
:class:`LegacyListDisk` reference, and records the results to
``BENCH_blockops.json`` at the repo root (schema
``repro-bench-timing/1``, one entry per op/substrate pair).

The structural claims are asserted, not just measured: a clean-device
snapshot must be identity-aliasing on the slab substrate, and restore
must not copy blocks.
"""

from __future__ import annotations

import time

from conftest import REPO_ROOT, run_once, save_result

from repro.bench.timing import record_entry
from repro.disk.disk import make_disk
from repro.disk.legacy import make_legacy_disk

NUM_BLOCKS = 512
BS = 4096
ROUNDS = 200

BLOCKOPS_JSON = REPO_ROOT / "BENCH_blockops.json"


def _payload(seed: int) -> bytes:
    return bytes([seed & 0xFF]) * BS


def _seed(disk) -> None:
    for b in range(NUM_BLOCKS):
        disk.write_block(b, _payload(b))


def _time_op(fn, rounds: int = ROUNDS) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return time.perf_counter() - started


def _bench_substrate(make):
    disk = make(NUM_BLOCKS, BS)
    _seed(disk)
    golden = disk.snapshot()
    results = {}

    def seq_read():
        for b in range(NUM_BLOCKS):
            disk.read_block(b)

    def seq_write():
        for b in range(NUM_BLOCKS):
            disk.write_block(b, _payload(b))

    def snap_restore():
        disk.restore(golden)
        disk.write_block(7, _payload(0xAB))
        disk.snapshot()

    def golden_restore():
        disk.restore(golden)

    results["seq_read_s"] = _time_op(seq_read, rounds=20)
    results["seq_write_s"] = _time_op(seq_write, rounds=20)
    results["snapshot_restore_s"] = _time_op(snap_restore)
    results["golden_restore_s"] = _time_op(golden_restore)
    results["blocks"] = NUM_BLOCKS
    results["block_size"] = BS
    return results


def test_blockops(benchmark):
    def run():
        return {
            "slab": _bench_substrate(make_disk),
            "legacy": _bench_substrate(make_legacy_disk),
        }

    results = run_once(benchmark, run)

    # Structural guarantees behind the numbers: clean snapshots alias.
    disk = make_disk(NUM_BLOCKS, BS)
    _seed(disk)
    golden = disk.snapshot()
    disk.restore(golden)
    assert disk.snapshot() is golden
    assert disk.dirty_count == 0

    for substrate, entry in results.items():
        record = {"wall_s": round(sum(
            v for k, v in entry.items() if k.endswith("_s")), 6)}
        record.update({k: (round(v, 6) if isinstance(v, float) else v)
                       for k, v in entry.items()})
        record_entry(f"blockops_{substrate}", record, path=BLOCKOPS_JSON)

    lines = ["block-substrate microbenchmarks "
             f"({NUM_BLOCKS} blocks x {BS} B, {ROUNDS} rounds)", ""]
    for op in ("seq_read_s", "seq_write_s", "snapshot_restore_s",
               "golden_restore_s"):
        slab = results["slab"][op]
        legacy = results["legacy"][op]
        ratio = legacy / slab if slab else float("inf")
        lines.append(f"{op:20} slab {slab * 1e3:8.2f} ms   "
                     f"legacy {legacy * 1e3:8.2f} ms   ({ratio:5.1f}x)")
    save_result("blockops", "\n".join(lines))

    # The headline: golden restores (the inner loop of every fault
    # matrix) must be far cheaper on the slab substrate than on the
    # copying reference.
    assert results["slab"]["golden_restore_s"] * 5 \
        < results["legacy"]["golden_restore_s"]
