"""Redundancy-array throughput benchmarks.

Measures, per array geometry (2-way mirror, 4-member rotating parity,
RDP at p=5), the virtual-time throughput of four phases:

* **healthy write** — populating the working set (parity geometries
  pay read-modify-write amplification, mirrors pay replication),
* **healthy read** — the fast path (one member read per logical read),
* **degraded read** — the same reads after a member fail-stop (every
  hit on the dead member reconstructs from the survivors),
* **rebuild** — repopulating a replaced member from peers.

Virtual MB/s is the honest axis (the simulator's disk-time model);
wall seconds are recorded alongside.  The run also regenerates the
array fingerprint matrix at ``jobs=1`` and ``jobs=4`` and asserts the
event fold digests are identical — the determinism witness committed
to ``BENCH_array.json``.
"""

from __future__ import annotations

import time

from conftest import REPO_ROOT, run_once, save_result

from repro.bench.timing import array_record, record_entry
from repro.redundancy import make_array
from repro.redundancy.fingerprint import run_array_fingerprint

NUM_BLOCKS = 256
BS = 4096
MB = 1024 * 1024

ARRAY_JSON = REPO_ROOT / "BENCH_array.json"

GEOMETRIES = [
    ("mirror2", "mirror", 2),
    ("parity4", "parity", 4),
    ("rdp5", "rdp", 5),
]


def _payload(seed: int) -> bytes:
    return bytes([seed & 0xFF]) * BS


def _busy(array) -> float:
    """Total disk time consumed across all members.

    ``array.clock`` is the max over members and can stand still for a
    whole phase (one member's earlier backlog dominating), so phases
    are costed by the *sum* of member busy time instead.
    """
    return sum(member.disk.stats.busy_time_s for member in array.members)


def _member_io(array):
    reads = sum(member.disk.stats.reads for member in array.members)
    writes = sum(member.disk.stats.writes for member in array.members)
    return reads, writes


def _phase(array, fn, blocks: int):
    """Run one phase, returning virtual cost plus member I/O counts."""
    v0 = _busy(array)
    r0, w0_ops = _member_io(array)
    w0 = time.perf_counter()
    fn()
    wall = time.perf_counter() - w0
    virtual = _busy(array) - v0
    r1, w1_ops = _member_io(array)
    mbps = (blocks * BS / MB) / virtual if virtual > 0 else 0.0
    return {"blocks": blocks, "virtual_s": round(virtual, 6),
            "wall_s": round(wall, 6), "virtual_mb_s": round(mbps, 3),
            "member_reads": r1 - r0, "member_writes": w1_ops - w0_ops}


def _bench_geometry(label: str, geometry: str, members: int):
    array = make_array(geometry, NUM_BLOCKS, BS, members=members)

    def write_all():
        for b in range(NUM_BLOCKS):
            array.write_block(b, _payload(b))

    def read_all():
        for b in range(NUM_BLOCKS):
            array.read_block(b)

    throughput = {}
    throughput["write"] = _phase(array, write_all, NUM_BLOCKS)
    throughput["read"] = _phase(array, read_all, NUM_BLOCKS)
    array.fail_member(0)
    throughput["degraded_read"] = _phase(array, read_all, NUM_BLOCKS)
    array.revive_member(0)
    array.replace_member(0)
    member_blocks = array.members[0].disk.num_blocks
    throughput["rebuild"] = _phase(
        array, lambda: array.rebuild_member(0), member_blocks)
    # Every logical block must read back intact after the rebuild.
    for b in range(NUM_BLOCKS):
        assert array.read_block(b) == _payload(b), (label, b)
    return array, throughput


def test_array_throughput(benchmark):
    def run():
        out = {}
        for label, geometry, members in GEOMETRIES:
            out[label] = _bench_geometry(label, geometry, members)
        return out

    started = time.perf_counter()
    results = run_once(benchmark, run)
    wall = time.perf_counter() - started

    lines = [f"array throughput ({NUM_BLOCKS} blocks x {BS} B, virtual MB/s)",
             ""]
    for label, geometry, members in GEOMETRIES:
        array, throughput = results[label]
        record = array_record(
            geometry, members, wall_s=wall, throughput=throughput,
            stats=array.stats,
            degraded_reads=array.degraded_reads,
            read_repairs=array.read_repairs,
            rebuilt_blocks=array.rebuilt_blocks,
        )
        record_entry(f"array_{label}", record, path=ARRAY_JSON)
        row = "  ".join(
            f"{phase}={entry['virtual_mb_s']:8.2f}"
            for phase, entry in throughput.items())
        lines.append(f"{label:10} {row}")
    save_result("array_throughput", "\n".join(lines))

    # Degraded reads must amplify member I/O (reconstruction touches
    # every surviving member of the stripe, healthy reads touch one).
    for label in ("parity4", "rdp5"):
        _, throughput = results[label]
        assert (throughput["degraded_read"]["member_reads"]
                > throughput["read"]["member_reads"]), label


def test_array_fingerprint_determinism(benchmark):
    def run():
        started = time.perf_counter()
        fp1 = run_array_fingerprint(jobs=1)
        wall_j1 = time.perf_counter() - started
        started = time.perf_counter()
        fp4 = run_array_fingerprint(jobs=4)
        wall_j4 = time.perf_counter() - started
        return fp1, fp4, wall_j1, wall_j4

    fp1, fp4, wall_j1, wall_j4 = run_once(benchmark, run)
    assert fp1.digest == fp4.digest
    assert fp1.render() == fp4.render()
    record_entry(
        "array_fingerprint",
        {
            "wall_s": round(wall_j1 + wall_j4, 6),
            "wall_s_jobs1": round(wall_j1, 6),
            "wall_s_jobs4": round(wall_j4, 6),
            "cells": sum(len(m.cells) for m in fp1.matrices.values()),
            "geometries": sorted(fp1.matrices),
            "event_digest_jobs1": fp1.digest,
            "event_digest_jobs4": fp4.digest,
        },
        path=ARRAY_JSON,
    )
    save_result("array_fingerprint", fp1.render())
