"""Fleet-scale Monte Carlo reliability campaign benchmark.

Regenerates the headline data-loss-probability matrix — five
geometries (the R_zero single-disk baseline, 2- and 3-way mirrors,
rotating parity, RDP) crossed with four IRON maintenance policies plus
the analytic cross-check cell — at ``jobs=1`` and ``jobs=4``, asserts
the campaign outcome digests are byte-identical (the determinism
witness: trials fan across the persistent pool but fold in enumeration
order), asserts the mirror2 fail-stop-only cell sits inside the
closed-form two-failure integral's tolerance, and commits both digests
to ``BENCH_fleet.json`` where ``repro bench --compare`` hard-fails on
any disagreement.
"""

from __future__ import annotations

import time

from conftest import REPO_ROOT, run_once, save_result

from repro.bench.timing import fleet_record, record_entry
from repro.common.pool import warm_pool
from repro.fleet.campaign import run_fleet
from repro.fleet.spec import FleetSpec

FLEET_JSON = REPO_ROOT / "BENCH_fleet.json"


def test_fleet_campaign(benchmark):
    spec = FleetSpec()  # trials=200, mission 10,000 h, the committed matrix

    def run():
        t0 = time.perf_counter()
        r1 = run_fleet(spec, jobs=1)
        wall_j1 = time.perf_counter() - t0
        warm_pool(4)
        t0 = time.perf_counter()
        r4 = run_fleet(spec, jobs=4)
        wall_j4 = time.perf_counter() - t0
        return r1, r4, wall_j1, wall_j4

    r1, r4, wall_j1, wall_j4 = run_once(benchmark, run)

    # The determinism witness: same digest at any --jobs width.
    assert r1.digest == r4.digest
    assert r1.matrix() == r4.matrix()
    assert r1.render() == r4.render()

    # The matrix must span the acceptance grid.
    geometries = {g for g, _p in r1.cells}
    policies = {p for _g, p in r1.cells}
    assert len(geometries) >= 5 and len(policies) >= 4

    # The simulation must agree with the closed-form mirror2 integral.
    assert r1.crosscheck is not None
    assert r1.crosscheck["within_tolerance"], r1.crosscheck

    record = fleet_record(
        r1, wall_s=wall_j1 + wall_j4,
        wall_s_jobs1=round(wall_j1, 6),
        wall_s_jobs4=round(wall_j4, 6),
        event_digest_jobs1=r1.digest,
        event_digest_jobs4=r4.digest,
    )
    record_entry("fleet_campaign", record, path=FLEET_JSON)
    save_result("fleet_campaign", r1.render())
