"""Fleet-scale Monte Carlo reliability campaign benchmark.

Regenerates the headline data-loss-probability matrix — five
geometries (the R_zero single-disk baseline, 2- and 3-way mirrors,
rotating parity, RDP) crossed with four IRON maintenance policies plus
the analytic cross-check cell — at ``jobs=1`` and ``jobs=4``, asserts
the campaign outcome digests are byte-identical (the determinism
witness: trials fan across the persistent pool but fold in enumeration
order), asserts the mirror2 fail-stop-only cell sits inside the
closed-form two-failure integral's tolerance, and commits both digests
to ``BENCH_fleet.json`` where ``repro bench --compare`` hard-fails on
any disagreement.

The flight recorder rides the same bar: the incident digest (a fold
over every classified loss post-mortem) must match across jobs widths,
every lost/stopped trial must map to exactly one incident, and every
incident cause ref must resolve against the retained event streams.
"""

from __future__ import annotations

import time

from conftest import REPO_ROOT, run_once, save_result

from repro.bench.timing import fleet_record, record_entry
from repro.common.pool import warm_pool
from repro.fleet.campaign import run_fleet
from repro.fleet.spec import FleetSpec
from repro.obs.trace import resolve_ref

FLEET_JSON = REPO_ROOT / "BENCH_fleet.json"


def test_fleet_campaign(benchmark):
    spec = FleetSpec()  # trials=200, mission 10,000 h, the committed matrix

    def run():
        t0 = time.perf_counter()
        r1 = run_fleet(spec, jobs=1)
        wall_j1 = time.perf_counter() - t0
        warm_pool(4)
        t0 = time.perf_counter()
        r4 = run_fleet(spec, jobs=4)
        wall_j4 = time.perf_counter() - t0
        return r1, r4, wall_j1, wall_j4

    r1, r4, wall_j1, wall_j4 = run_once(benchmark, run)

    # The determinism witness: same digest at any --jobs width.
    assert r1.digest == r4.digest
    assert r1.matrix() == r4.matrix()
    assert r1.render() == r4.render()

    # ... and the flight recorder's: the incident digest folds every
    # classified post-mortem in enumeration order.
    assert r1.incident_digest == r4.incident_digest

    # The matrix must span the acceptance grid.
    geometries = {g for g, _p in r1.cells}
    policies = {p for _g, p in r1.cells}
    assert len(geometries) >= 5 and len(policies) >= 4

    # Every lost/stopped trial maps to exactly one classified incident,
    # and every incident cause ref resolves against the retained
    # streams (the provenance acceptance bar).
    terminal = sum(
        cell.outcomes["detected-loss"] + cell.outcomes["silent-loss"]
        + cell.outcomes["stopped"] for cell in r1.cells.values())
    assert terminal == len(r1.incidents)
    seen = set()
    for incident in r1.incidents:
        key = (incident.geometry, incident.policy, incident.trial)
        assert key not in seen
        seen.add(key)
        for cause in incident.causes:
            event = resolve_ref(cause.ref, r1.streams)
            assert event.tag == cause.tag

    # The simulation must agree with the closed-form mirror2 integral.
    assert r1.crosscheck is not None
    assert r1.crosscheck["within_tolerance"], r1.crosscheck

    record = fleet_record(
        r1, wall_s=wall_j1 + wall_j4,
        wall_s_jobs1=round(wall_j1, 6),
        wall_s_jobs4=round(wall_j4, 6),
        event_digest_jobs1=r1.digest,
        event_digest_jobs4=r4.digest,
        incident_digest_jobs1=r1.incident_digest,
        incident_digest_jobs4=r4.incident_digest,
    )
    record_entry("fleet_campaign", record, path=FLEET_JSON)
    save_result("fleet_campaign", r1.render())
