"""Ablation: lazy vs eager detection (§3.2, disk scrubbing).

Latent sector errors hide in rarely-read blocks.  Under lazy (on
access) detection, a workload that only touches hot files never
notices them; an eager scrub pass finds every one — and with ixt3's
replicas available as a repair source, fixes them on the spot.
"""

from conftest import run_once, save_result

from repro.common.errors import ReadError
from repro.disk import DeviceStack, Fault, FaultKind, FaultOp, Scrubber, make_disk
from repro.fs.ext3 import Ext3Config
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3

BASE = Ext3Config(ptrs_per_block=8)
CFG = ixt3_config(BASE)


def build_volume():
    disk = make_disk(CFG.total_blocks, CFG.block_size)
    mkfs_ixt3(disk, BASE, config=CFG)
    fs = Ixt3(disk)
    fs.mount()
    fs.write_file("/hot", b"frequently read " * 16)
    for i in range(6):
        fs.write_file(f"/cold{i}", bytes([i]) * 2048)
    fs.unmount()
    return disk


def test_ablation_scrub(benchmark):
    def run():
        disk = build_volume()
        stack = DeviceStack(disk, inject=True)
        injector = stack.injector
        fs = Ixt3(stack)
        fs.mount()
        injector.set_type_oracle(fs.block_type)

        # Latent sector errors on three cold-file data blocks.
        cold_blocks = [
            b for b in range(disk.num_blocks)
            if fs.block_type(b) == "data"
        ][-6::2]
        for b in cold_blocks:
            injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=b))

        # Lazy phase: a hot-file-only workload discovers nothing.
        for _ in range(20):
            fs.read_file("/hot")
        lazy_found = sum(1 for e in injector.trace.errors() if e.is_read())

        # Eager phase: scrub the volume, repairing from parity/replica.
        def repairer(block: int) -> bool:
            # The FS-level read path performs the reconstruction; if the
            # file reads back intact, the latent error was masked.
            for i in range(6):
                try:
                    fs.read_file(f"/cold{i}")
                except Exception:
                    return False
            return True

        scrubber = Scrubber(injector, repairer=repairer)
        report = scrubber.scrub()
        return lazy_found, report, len(cold_blocks)

    lazy_found, report, injected = run_once(benchmark, run)
    save_result("ablation_scrub", "\n".join([
        f"latent errors injected: {injected}",
        f"found by 20 rounds of hot-file reads (lazy): {lazy_found}",
        f"found by one scrub pass (eager): {len(report.latent_errors)}",
        report.render(),
    ]))

    # Lazy detection never sees the cold-file errors...
    assert lazy_found == 0
    # ...one eager pass finds every one of them.
    assert len(report.latent_errors) == injected
    assert report.blocks_scanned == CFG.total_blocks
    # With redundancy available, the scrubber repairs what it finds.
    assert len(report.repaired) == injected
